package interp

import (
	"fmt"
	"math/rand"

	"rolag/internal/ir"
)

// Observation captures everything externally observable from one
// execution of a function: the return value, the external-call trace,
// the final contents of every pointer-argument buffer and of every named
// global, and the executed instruction count.
type Observation struct {
	Ret     Val
	Trace   []TraceEvent
	Buffers [][]byte
	Globals map[string][]byte
	Steps   int64
}

// Harness drives comparable executions of a function: arguments are
// generated deterministically from a seed, with each pointer parameter
// backed by a fresh buffer of BufBytes pseudo-random nonzero bytes.
type Harness struct {
	// BufBytes is the size of each pointer-argument buffer (default 512).
	BufBytes int
	// MaxSteps bounds execution (default 10M).
	MaxSteps int64
	// MaxMem bounds interpreter memory (default 64 MiB).
	MaxMem int64
	// MaxDepth bounds the call stack (default 4096).
	MaxDepth int
	// Externs is installed into the interpreter before running.
	Externs map[string]ExternFunc
}

// Run executes function fname of mod with seeded arguments and returns
// the observation.
func (h *Harness) Run(mod *ir.Module, fname string, seed int64) (*Observation, error) {
	f := mod.FindFunc(fname)
	if f == nil {
		return nil, fmt.Errorf("interp: no function @%s", fname)
	}
	in, err := New(mod)
	if err != nil {
		return nil, err
	}
	if h.MaxSteps > 0 {
		in.MaxSteps = h.MaxSteps
	}
	if h.MaxMem > 0 {
		in.MaxMem = h.MaxMem
	}
	if h.MaxDepth > 0 {
		in.MaxDepth = h.MaxDepth
	}
	for name, fn := range h.Externs {
		in.Externs[name] = fn
	}
	bufBytes := h.BufBytes
	if bufBytes <= 0 {
		bufBytes = 512
	}
	rng := rand.New(rand.NewSource(seed))
	args := make([]Val, len(f.Params))
	type bufInfo struct {
		addr int64
		size int64
	}
	var bufs []bufInfo
	for i, p := range f.Params {
		switch p.Typ.(type) {
		case ir.IntType:
			args[i] = IntVal(int64(rng.Intn(7) + 1))
		case ir.FloatType:
			args[i] = FloatVal(float64(rng.Intn(16)) / 4.0)
		case ir.PointerType:
			addr, err := in.Alloc(int64(bufBytes), 8)
			if err != nil {
				return nil, err
			}
			for j := int64(0); j < int64(bufBytes); j++ {
				in.mem[addr+j] = byte(rng.Intn(8) + 1)
			}
			args[i] = IntVal(addr)
			bufs = append(bufs, bufInfo{addr: addr, size: int64(bufBytes)})
		default:
			return nil, fmt.Errorf("interp: unsupported parameter type %s", p.Typ)
		}
	}
	ret, err := in.CallFunc(f, args)
	if err != nil {
		return nil, err
	}
	obs := &Observation{
		Ret:     ret,
		Trace:   in.Trace,
		Globals: make(map[string][]byte),
		Steps:   in.Steps,
	}
	for _, b := range bufs {
		data, err := in.LoadBytes(b.addr, b.size)
		if err != nil {
			return nil, err
		}
		obs.Buffers = append(obs.Buffers, data)
	}
	for _, g := range mod.Globals {
		data, err := in.LoadBytes(in.globalAddr[g], int64(g.Elem.Size()))
		if err != nil {
			return nil, err
		}
		obs.Globals[g.Name] = data
	}
	return obs, nil
}

// Equivalent compares two observations, ignoring globals present in only
// one module (transformations may add constant pool globals) and the
// step counts. It returns a descriptive error on the first mismatch.
func Equivalent(a, b *Observation) error {
	if a.Ret != b.Ret {
		return fmt.Errorf("return values differ: %+v vs %+v", a.Ret, b.Ret)
	}
	if len(a.Trace) != len(b.Trace) {
		return fmt.Errorf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		ta, tb := a.Trace[i], b.Trace[i]
		if ta.Callee != tb.Callee {
			return fmt.Errorf("trace[%d]: callee %s vs %s", i, ta.Callee, tb.Callee)
		}
		if len(ta.Args) != len(tb.Args) {
			return fmt.Errorf("trace[%d]: arg counts differ", i)
		}
		for j := range ta.Args {
			if ta.Args[j] != tb.Args[j] {
				return fmt.Errorf("trace[%d] @%s arg %d: %+v vs %+v", i, ta.Callee, j, ta.Args[j], tb.Args[j])
			}
		}
		if ta.Ret != tb.Ret {
			return fmt.Errorf("trace[%d] @%s: returns differ", i, ta.Callee)
		}
	}
	if len(a.Buffers) != len(b.Buffers) {
		return fmt.Errorf("buffer counts differ: %d vs %d", len(a.Buffers), len(b.Buffers))
	}
	for i := range a.Buffers {
		if string(a.Buffers[i]) != string(b.Buffers[i]) {
			return fmt.Errorf("argument buffer %d contents differ at offset %d", i, firstDiff(a.Buffers[i], b.Buffers[i]))
		}
	}
	for name, ga := range a.Globals {
		gb, ok := b.Globals[name]
		if !ok {
			continue
		}
		if string(ga) != string(gb) {
			return fmt.Errorf("global @%s contents differ at offset %d", name, firstDiff(ga, gb))
		}
	}
	return nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// CheckEquiv runs fname in both modules across nSeeds seeded executions
// and returns the first behavioural difference found, or nil if all runs
// match.
//
// Trap policy: a seed on which the original traps is skipped — the
// trapping conditions (out-of-bounds access, division by zero) are
// undefined behaviour in the source language, so the transformed module
// owes nothing on that input. The interpreter defines them as traps
// only so the harness itself never hangs or corrupts state. Legal
// transformations can both remove a trap (dead-code elimination of an
// unused faulting load) and change which trap fires first (reordering
// independent side-effect-free trap sites), so no cross-module claim is
// checkable once the original has faulted. Harness-level errors
// (unsupported signatures) also skip. The strict direction remains: a
// transformed module that fails where the original succeeded is always
// reported, as is any observable difference.
func CheckEquiv(orig, xform *ir.Module, fname string, nSeeds int, h *Harness) error {
	if h == nil {
		h = &Harness{}
	}
	for seed := 0; seed < nSeeds; seed++ {
		oa, err := h.Run(orig, fname, int64(seed)+1)
		if err != nil {
			continue
		}
		ob, err := h.Run(xform, fname, int64(seed)+1)
		if err != nil {
			return fmt.Errorf("transformed fails (seed %d) where original succeeds: %w", seed, err)
		}
		if err := Equivalent(oa, ob); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	return nil
}
