package interp_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/passes"
)

func TestInterpQuick(t *testing.T) {
	src := `
int sumn(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	return s;
}
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
void fill(int *a, int n) {
	for (int i = 0; i < n; i++) a[i] = i * 3;
}
`
	m, err := cc.Compile(src, "q")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, m)
	}
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	v, err := in.Call("sumn", interp.IntVal(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 45 {
		t.Errorf("sumn(10) = %d, want 45", v.I)
	}
	v, err = in.Call("fib", interp.IntVal(10))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 55 {
		t.Errorf("fib(10) = %d, want 55", v.I)
	}
	addr, aerr := in.Alloc(40, 8)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if _, err = in.Call("fill", interp.IntVal(addr), interp.IntVal(10)); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		got, err := in.LoadBytes(addr+i*4, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := byte(i * 3)
		if got[0] != want {
			t.Errorf("a[%d] low byte = %d, want %d", i, got[0], want)
		}
	}
}
