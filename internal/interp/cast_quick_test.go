package interp_test

// Property tests: the interpreter's arithmetic and conversions agree
// with Go's own semantics for the corresponding C operations.

import (
	"testing"
	"testing/quick"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func buildFn(t *testing.T, src string) *interp.Interp {
	t.Helper()
	m, err := cc.Compile(src, "q")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestQuickIntTruncationChain(t *testing.T) {
	in := buildFn(t, `
int f(long x) { char c = (char)x; short s = (short)x; return c + s + (int)x; }`)
	prop := func(x int64) bool {
		v, err := in.Call("f", interp.IntVal(x))
		if err != nil {
			return false
		}
		want := int32(int8(x)) + int32(int16(x)) + int32(x)
		return v.I == int64(want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSignedDivision(t *testing.T) {
	in := buildFn(t, `int f(int a, int b) { return a / b + a % b; }`)
	prop := func(a int32, b int32) bool {
		if b == 0 || (a == -2147483648 && b == -1) {
			return true // UB in C; the interpreter guards div-by-zero separately
		}
		v, err := in.Call("f", interp.IntVal(int64(a)), interp.IntVal(int64(b)))
		if err != nil {
			return false
		}
		return v.I == int64(a/b+a%b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloatToIntRoundTrip(t *testing.T) {
	in := buildFn(t, `long f(double x) { return (long)x; }`)
	prop := func(x int32) bool {
		v, err := in.Call("f", interp.FloatVal(float64(x)))
		if err != nil {
			return false
		}
		return v.I == int64(x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloat32Narrowing(t *testing.T) {
	in := buildFn(t, `float f(double x) { return (float)x; }`)
	prop := func(x float64) bool {
		v, err := in.Call("f", interp.FloatVal(x))
		if err != nil {
			return false
		}
		want := float64(float32(x))
		return v.F == want || (want != want && v.F != v.F) // NaN-safe
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftSemantics(t *testing.T) {
	in := buildFn(t, `int f(int a, int s) { return (a << s) + (a >> s); }`)
	prop := func(a int32, s uint8) bool {
		sh := int32(s % 31)
		v, err := in.Call("f", interp.IntVal(int64(a)), interp.IntVal(int64(sh)))
		if err != nil {
			return false
		}
		return v.I == int64(a<<sh+a>>sh)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMemoryRoundTrip(t *testing.T) {
	// Store through one type, reload through the same type — bit-exact.
	m := ir.NewModule("mem")
	in, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	addr, aerr := in.Alloc(16, 8)
	if aerr != nil {
		t.Fatal(aerr)
	}
	prop := func(x int64) bool {
		if err := in.StoreTyped(addr, ir.I64, interp.IntVal(x)); err != nil {
			return false
		}
		v, err := in.LoadTyped(addr, ir.I64)
		return err == nil && v.I == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	propF := func(x float64) bool {
		if err := in.StoreTyped(addr, ir.F64, interp.FloatVal(x)); err != nil {
			return false
		}
		v, err := in.LoadTyped(addr, ir.F64)
		if err != nil {
			return false
		}
		return v.F == x || (x != x && v.F != v.F)
	}
	if err := quick.Check(propF, nil); err != nil {
		t.Error(err)
	}
}
