package interp_test

// Trap semantics: every way a hostile-but-verified program can misbehave
// at runtime must surface as a defined *interp.Trap, never as a Go panic
// or an unbounded hang. The fuzzing harness (internal/fuzzgen) relies on
// these guarantees to classify failures.

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
)

func compileForTrap(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "trap")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func runTrap(t *testing.T, src, fname string, args ...interp.Val) error {
	t.Helper()
	m := compileForTrap(t, src)
	in, err := interp.New(m)
	if err != nil {
		t.Fatalf("new interp: %v", err)
	}
	in.MaxSteps = 100_000
	in.MaxMem = 1 << 20
	in.MaxDepth = 64
	_, err = in.CallFunc(m.FindFunc(fname), args)
	return err
}

func wantTrap(t *testing.T, err error, kind interp.TrapKind) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected %v trap, got success", kind)
	}
	tr, ok := interp.AsTrap(err)
	if !ok {
		t.Fatalf("expected %v trap, got non-trap error: %v", kind, err)
	}
	if tr.Kind != kind {
		t.Fatalf("expected %v trap, got %v (%v)", kind, tr.Kind, err)
	}
}

func TestTrapDivByZero(t *testing.T) {
	err := runTrap(t, "int f(int a, int b) { return a / b; }", "f",
		interp.IntVal(7), interp.IntVal(0))
	wantTrap(t, err, interp.TrapDivByZero)
}

func TestTrapRemByZero(t *testing.T) {
	err := runTrap(t, "int f(int a, int b) { return a % b; }", "f",
		interp.IntVal(7), interp.IntVal(0))
	wantTrap(t, err, interp.TrapDivByZero)
}

func TestTrapOutOfBoundsLoad(t *testing.T) {
	// Null-ish pointer: addresses below 16 are invalid by construction.
	err := runTrap(t, "int f(int *p) { return p[0]; }", "f", interp.IntVal(0))
	wantTrap(t, err, interp.TrapOutOfBounds)
}

func TestTrapOutOfBoundsGepStore(t *testing.T) {
	// A wildly out-of-range index through a valid local array.
	src := `
int f(int i) {
	int a[4];
	a[0] = 1;
	a[i] = 9;
	return a[0];
}`
	err := runTrap(t, src, "f", interp.IntVal(1<<40))
	wantTrap(t, err, interp.TrapOutOfBounds)
}

func TestTrapStepLimit(t *testing.T) {
	err := runTrap(t, "int f(int n) { int s = 0; for (;;) s += n; return s; }", "f",
		interp.IntVal(1))
	wantTrap(t, err, interp.TrapStepLimit)
}

func TestTrapCallDepth(t *testing.T) {
	err := runTrap(t, "int f(int n) { return f(n + 1); }", "f", interp.IntVal(0))
	wantTrap(t, err, interp.TrapCallDepth)
}

func TestTrapHarnessPropagates(t *testing.T) {
	// The seeded equivalence harness must report traps as errors rather
	// than panicking or hanging.
	m := compileForTrap(t, "int f(int a) { return 10 / (a - a); }")
	h := &interp.Harness{MaxSteps: 10_000}
	_, err := h.Run(m, "f", 1)
	wantTrap(t, err, interp.TrapDivByZero)
}

func TestIsResourceTrap(t *testing.T) {
	if !interp.IsResourceTrap(&interp.Trap{Kind: interp.TrapStepLimit}) {
		t.Error("step limit should be a resource trap")
	}
	if interp.IsResourceTrap(&interp.Trap{Kind: interp.TrapDivByZero}) {
		t.Error("division by zero is not a resource trap")
	}
}
