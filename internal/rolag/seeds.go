package rolag

import (
	"sort"
	"strings"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// SeedKind classifies a seed group.
type SeedKind int

// Seed group kinds.
const (
	SeedStores SeedKind = iota
	SeedCalls
	SeedReduction
)

// String returns the kind's remark label.
func (k SeedKind) String() string {
	switch k {
	case SeedStores:
		return "stores"
	case SeedCalls:
		return "calls"
	case SeedReduction:
		return "reduction"
	}
	return "unknown"
}

// SeedGroup is a set of instructions likely to lead to isomorphic code
// (§IV.A): stores grouped by value type and base address, calls grouped
// by callee, and reduction-tree roots.
type SeedGroup struct {
	Kind   SeedKind
	Instrs []*ir.Instr // the seeds, in block order (lanes of the loop)

	// Reduction-only fields.
	RedRoot     *ir.Instr
	RedOp       ir.Op
	RedInternal []*ir.Instr
	RedLeaves   []ir.Value
	// Min/max reduction chains (extension): the comparison predicate
	// and operation of the per-link compare.
	MinMaxPred ir.Pred
	MinMaxCmp  ir.Op
	MinMaxInit ir.Value
}

// Lanes returns the prospective loop trip count.
func (s *SeedGroup) Lanes() int {
	if s.Kind == SeedReduction {
		return len(s.RedLeaves)
	}
	return len(s.Instrs)
}

// CollectSeedGroups scans a basic block and returns the seed groups
// ordered by descending lane count (bigger rolls first), breaking ties by
// first-seed position.
func CollectSeedGroups(b *ir.Block, opts *Options) []*SeedGroup {
	return collectSeedGroupsInfo(b, opts, analysis.NewManager().Info(b.Parent))
}

// collectSeedGroupsInfo is CollectSeedGroups against cached analyses:
// the position index and the function-wide def-use chains come from fi
// instead of being rebuilt per call.
func collectSeedGroupsInfo(b *ir.Block, opts *Options, fi *analysis.FuncInfo) []*SeedGroup {
	minLanes := opts.MinLanes
	if minLanes < 2 {
		minLanes = 2
	}
	index := fi.Index()

	var groups []*SeedGroup

	// Stores grouped by (stored type, base object of the address).
	type storeKey struct {
		typ  string
		base ir.Value
	}
	storeGroups := make(map[storeKey][]*ir.Instr)
	var storeOrder []storeKey
	for _, in := range b.Instrs {
		if in.Op != ir.OpStore {
			continue
		}
		base := baseObject(in.Operand(1))
		if isRollArtifact(base) {
			// Stores materializing a previous roll's mismatch or
			// extraction arrays must not seed another roll: doing so
			// would regress forever (each roll creates new such
			// stores).
			continue
		}
		k := storeKey{typ: in.Operand(0).Type().String(), base: base}
		if _, ok := storeGroups[k]; !ok {
			storeOrder = append(storeOrder, k)
		}
		storeGroups[k] = append(storeGroups[k], in)
	}
	for _, k := range storeOrder {
		g := storeGroups[k]
		if len(g) >= minLanes {
			groups = append(groups, &SeedGroup{Kind: SeedStores, Instrs: g})
		}
	}

	// Calls grouped by callee.
	callGroups := make(map[*ir.Func][]*ir.Instr)
	var callOrder []*ir.Func
	for _, in := range b.Instrs {
		if in.Op != ir.OpCall {
			continue
		}
		if _, ok := callGroups[in.Callee]; !ok {
			callOrder = append(callOrder, in.Callee)
		}
		callGroups[in.Callee] = append(callGroups[in.Callee], in)
	}
	for _, c := range callOrder {
		g := callGroups[c]
		if len(g) >= minLanes {
			groups = append(groups, &SeedGroup{Kind: SeedCalls, Instrs: g})
		}
	}

	// Reduction-tree roots (§IV.C5).
	if opts.EnableReduction {
		for _, red := range collectReductions(b, opts, minLanes, fi.Users()) {
			groups = append(groups, red)
		}
	}
	// Select-based min/max reduction chains (extension; the paper's
	// future work).
	if opts.EnableMinMaxReduction {
		for _, red := range collectMinMaxReductions(b, minLanes, fi.Users()) {
			groups = append(groups, red)
		}
	}

	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].Lanes() != groups[j].Lanes() {
			return groups[i].Lanes() > groups[j].Lanes()
		}
		return seedPos(groups[i], index) < seedPos(groups[j], index)
	})
	return groups
}

func seedPos(g *SeedGroup, index map[*ir.Instr]int) int {
	if g.Kind == SeedReduction {
		return index[g.RedRoot]
	}
	return index[g.Instrs[0]]
}

// isRollArtifact reports whether v is an array created by RoLAG's own
// code generator (mismatch data, extraction buffers). The generator
// names them with a "roll." prefix, which no frontend identifier can
// carry (user names never contain a dot).
func isRollArtifact(v ir.Value) bool {
	switch v := v.(type) {
	case *ir.Instr:
		return v.Op == ir.OpAlloca && strings.HasPrefix(v.Name, "roll.")
	case *ir.Global:
		return strings.HasPrefix(v.Name, "roll.")
	}
	return false
}

// baseObject walks geps and bitcasts down to the root pointer, which
// identifies the "base address" used for grouping stores.
func baseObject(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v
		}
		switch in.Op {
		case ir.OpGEP, ir.OpBitcast:
			v = in.Operand(0)
		default:
			return v
		}
	}
}

// collectReductions finds reduction trees: maximal same-opcode trees of
// associative binary operations whose internal nodes are used only inside
// the tree. The leaves become the seed lanes.
func collectReductions(b *ir.Block, opts *Options, minLanes int, users map[ir.Value][]*ir.Instr) []*SeedGroup {
	// users must be counted function-wide, not per-block: an earlier
	// roll in the same RollFunc invocation may have split the block,
	// moving a user of an intermediate value (a terminator operand, a
	// value live across the split) into a successor block. A block-local
	// map would miss that use, claim the intermediate as tree-internal,
	// and delete a value that is still referenced.
	assoc := func(op ir.Op) bool {
		if op.IsAssociative() {
			return true
		}
		if opts.FastMath && (op == ir.OpFAdd || op == ir.OpFMul) {
			return true
		}
		return false
	}
	var out []*SeedGroup
	claimed := make(map[*ir.Instr]bool)
	// Scan in reverse so roots (late in the block) are found before
	// their internals.
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		root := b.Instrs[i]
		if claimed[root] || !root.Op.IsBinary() || !assoc(root.Op) {
			continue
		}
		// A root must not itself feed a same-opcode instruction in the
		// block (that one would be the root).
		isRoot := true
		for _, u := range users[root] {
			if u.Op == root.Op && u.Parent == b {
				isRoot = false
				break
			}
		}
		if !isRoot {
			continue
		}
		var internal []*ir.Instr
		var leaves []ir.Value
		ok := true
		var walk func(v ir.Value)
		walk = func(v ir.Value) {
			if !ok {
				return
			}
			in, isInstr := v.(*ir.Instr)
			if isInstr && in.Parent == b && in.Op == root.Op && (in == root || singleUser(users, in)) {
				if claimed[in] {
					ok = false
					return
				}
				internal = append(internal, in)
				walk(in.Operand(0))
				walk(in.Operand(1))
				return
			}
			leaves = append(leaves, v)
		}
		walk(root)
		if !ok || len(internal) < 2 || len(leaves) < minLanes {
			continue
		}
		for _, in := range internal {
			claimed[in] = true
		}
		out = append(out, &SeedGroup{
			Kind:        SeedReduction,
			Instrs:      []*ir.Instr{root},
			RedRoot:     root,
			RedOp:       root.Op,
			RedInternal: internal,
			RedLeaves:   leaves,
		})
	}
	return out
}

func singleUser(users map[ir.Value][]*ir.Instr, v *ir.Instr) bool {
	n := 0
	for _, u := range users[v] {
		for _, op := range u.Operands {
			if op == ir.Value(v) {
				n++
			}
		}
	}
	return n == 1
}

// TryJoin attempts to combine seed groups that alternate in position into
// one joint group (§IV.C6). It returns the groups to roll together in
// body order, or nil when g cannot be joined.
func TryJoin(b *ir.Block, g *SeedGroup, others []*SeedGroup) []*SeedGroup {
	index := make(map[*ir.Instr]int, len(b.Instrs))
	for i, in := range b.Instrs {
		index[in] = i
	}
	return tryJoinIdx(b, g, others, index)
}

// tryJoinIdx is TryJoin with the block position index supplied by the
// caller (typically a cached analysis.FuncInfo.Index).
func tryJoinIdx(b *ir.Block, g *SeedGroup, others []*SeedGroup, index map[*ir.Instr]int) []*SeedGroup {
	if g.Kind == SeedReduction {
		return nil
	}
	joined := []*SeedGroup{g}
	for _, o := range others {
		if o == g || o.Kind == SeedReduction || o.Lanes() != g.Lanes() {
			continue
		}
		if interleaved(joined, o, index) {
			joined = append(joined, o)
		}
	}
	if len(joined) == 1 {
		return nil
	}
	// Order the joined groups by the position of their first seed so the
	// loop body preserves the original alternating order.
	sort.SliceStable(joined, func(i, j int) bool {
		return index[joined[i].Instrs[0]] < index[joined[j].Instrs[0]]
	})
	return joined
}

// interleaved reports whether group o's seeds alternate with the combined
// seeds of groups gs: for every lane k, all groups' lane-k seeds must
// precede all groups' lane-k+1 seeds.
func interleaved(gs []*SeedGroup, o *SeedGroup, index map[*ir.Instr]int) bool {
	lanes := o.Lanes()
	for k := 0; k < lanes-1; k++ {
		maxThis := index[o.Instrs[k]]
		minNext := index[o.Instrs[k+1]]
		for _, g := range gs {
			if index[g.Instrs[k]] > maxThis {
				maxThis = index[g.Instrs[k]]
			}
			if index[g.Instrs[k+1]] < minNext {
				minNext = index[g.Instrs[k+1]]
			}
		}
		if maxThis > minNext {
			return false
		}
	}
	return true
}

// BuildGraph constructs the alignment graph for a seed group (or, for
// joint rolling, several alternating groups). It returns nil with an
// error when the group cannot be aligned.
func BuildGraph(b *ir.Block, opts *Options, groups ...*SeedGroup) (*Graph, error) {
	return buildGraphIntern(b, opts, analysis.NewInterner(), groups...)
}

// buildGraphInfo is BuildGraph with the function's cached analyses: the
// value interner persists across graph builds of the same function, so
// memoization keys are reused integer ids instead of freshly formatted
// strings.
func buildGraphInfo(b *ir.Block, opts *Options, fi *analysis.FuncInfo, groups ...*SeedGroup) (*Graph, error) {
	return buildGraphIntern(b, opts, fi.Interner(), groups...)
}

func buildGraphIntern(b *ir.Block, opts *Options, intern *analysis.Interner, groups ...*SeedGroup) (*Graph, error) {
	gb := newGraphBuilder(opts, b, intern)
	var roots []*Node
	for _, g := range groups {
		var root *Node
		var err error
		switch g.Kind {
		case SeedReduction:
			root, err = gb.buildReduction(g)
		default:
			root, err = gb.makeMatch(g.Instrs)
			if root == nil && err == nil {
				err = &errAbort{code: "seeds-not-isomorphic", reason: "seed instructions are not isomorphic"}
			}
		}
		if err != nil {
			return nil, err
		}
		roots = append(roots, root)
	}
	var root *Node
	if len(roots) == 1 {
		root = roots[0]
	} else {
		root = gb.addNode(&Node{Kind: KindJoint, Groups: roots})
	}
	graph := &Graph{
		Root:    root,
		Block:   b,
		Nodes:   gb.nodes,
		Matched: make(map[*ir.Instr]int),
	}
	for in, ref := range gb.claimed {
		graph.Matched[in] = ref.lane
	}
	// Reduction internals are consumed by the roll but have no lane.
	for _, n := range gb.nodes {
		if n.Kind == KindReduction {
			for _, in := range n.RedInternal {
				graph.Matched[in] = -1
			}
		}
	}
	// A value referenced as a loop input (identical/mismatch/recurrence
	// init lanes) must survive the roll; if it was also claimed by a
	// match node it would be deleted. Abort in that case.
	for _, n := range gb.nodes {
		var inputs []ir.Value
		switch n.Kind {
		case KindIdentical, KindMismatch:
			inputs = n.Vals
		case KindRecurrence:
			inputs = []ir.Value{n.Init}
		}
		for _, v := range inputs {
			if d, ok := v.(*ir.Instr); ok {
				if _, isClaimed := gb.claimed[d]; isClaimed {
					return nil, &errAbort{code: "input-matched", reason: "loop input is also a matched instruction"}
				}
				if _, isRed := graph.Matched[d]; isRed {
					return nil, &errAbort{code: "input-in-reduction", reason: "loop input is inside a reduction tree"}
				}
			}
		}
	}
	return graph, nil
}

// buildReduction creates the reduction node and grows the graph from the
// leaf group (§IV.C5). When the leftmost leaf is an odd one out — a phi
// (the accumulator of a partially unrolled reduction loop) or the only
// non-uniform leaf — it becomes the accumulator's initial value instead
// of a lane, mirroring how reductions enter loops in SSA form.
func (gb *graphBuilder) buildReduction(g *SeedGroup) (*Node, error) {
	n := gb.addNode(&Node{
		Kind:        KindReduction,
		RedOp:       g.RedOp,
		RedRoot:     g.RedRoot,
		RedInternal: append([]*ir.Instr(nil), g.RedInternal...),
		MinMaxPred:  g.MinMaxPred,
		MinMaxCmp:   g.MinMaxCmp,
	})
	leaves := g.RedLeaves
	if g.MinMaxPred != ir.PredInvalid {
		n.Init = g.MinMaxInit
	} else if len(leaves) >= 3 && oddFirstLeaf(leaves, gb.block) {
		n.Init = leaves[0]
		leaves = leaves[1:]
	}
	child, err := gb.build(leaves, nil)
	if err != nil {
		return nil, err
	}
	n.Children = []*Node{child}
	return n, nil
}

// oddFirstLeaf reports whether leaves[0] should seed the accumulator: it
// is a phi, or every other leaf is an instruction in the block with one
// common opcode while leaves[0] is not.
func oddFirstLeaf(leaves []ir.Value, b *ir.Block) bool {
	if in, ok := leaves[0].(*ir.Instr); ok && in.Op == ir.OpPhi {
		return true
	}
	var common ir.Op
	for _, v := range leaves[1:] {
		in, ok := v.(*ir.Instr)
		if !ok || in.Parent != b {
			return false
		}
		if common == ir.OpInvalid {
			common = in.Op
		} else if in.Op != common {
			return false
		}
	}
	if in, ok := leaves[0].(*ir.Instr); ok && in.Parent == b && in.Op == common {
		return false
	}
	return common != ir.OpInvalid
}

// collectMinMaxReductions finds select-based min/max chains:
//
//	v_k = select(cmp pred (cand_k, v_{k-1}), cand_k, v_{k-1})
//
// rooted at the last select. The candidates become the lanes and the
// chain's entry value seeds the accumulator. This implements the
// min/max reductions the paper lists as future work (§V.C).
func collectMinMaxReductions(b *ir.Block, minLanes int, users map[ir.Value][]*ir.Instr) []*SeedGroup {
	// users is function-wide for the same reason as collectReductions:
	// chain values may have users in blocks created by earlier rolls.
	var out []*SeedGroup
	claimed := make(map[*ir.Instr]bool)
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		root := b.Instrs[i]
		if claimed[root] || root.Op != ir.OpSelect {
			continue
		}
		// Not itself part of a longer chain.
		partOfChain := false
		for _, u := range users[root] {
			if u.Op == ir.OpSelect && u.Parent == b && u.Operand(2) == ir.Value(root) {
				partOfChain = true
			}
		}
		if partOfChain {
			continue
		}
		var internal []*ir.Instr
		var leaves []ir.Value
		var init ir.Value
		var pred ir.Pred
		var cmpOp ir.Op
		cur := root
		ok := true
		for {
			cmp, isCmp := cur.Operand(0).(*ir.Instr)
			if !isCmp || (cmp.Op != ir.OpICmp && cmp.Op != ir.OpFCmp) || cmp.Parent != b {
				ok = false
				break
			}
			cand := cur.Operand(1)
			prev := cur.Operand(2)
			if cmp.Operand(0) != cand || cmp.Operand(1) != prev {
				ok = false
				break
			}
			if pred == ir.PredInvalid {
				pred, cmpOp = cmp.Pred, cmp.Op
			} else if cmp.Pred != pred || cmp.Op != cmpOp {
				ok = false
				break
			}
			if claimed[cur] || claimed[cmp] {
				ok = false
				break
			}
			// The comparison must feed only this select: an external
			// user (e.g. an argmax index select, as in TSVC's s315)
			// would be left referencing a deleted instruction.
			if len(users[cmp]) != 1 || users[cmp][0] != cur {
				ok = false
				break
			}
			internal = append(internal, cur, cmp)
			leaves = append(leaves, cand)
			p, isSel := prev.(*ir.Instr)
			if isSel && p.Op == ir.OpSelect && p.Parent == b && singleChainUse(users, p) {
				cur = p
				continue
			}
			init = prev
			break
		}
		if !ok || init == nil || len(leaves) < minLanes || len(internal) < 4 {
			continue
		}
		// leaves were collected last-to-first; reverse into lane order.
		for l, r := 0, len(leaves)-1; l < r; l, r = l+1, r-1 {
			leaves[l], leaves[r] = leaves[r], leaves[l]
		}
		for _, in := range internal {
			claimed[in] = true
		}
		out = append(out, &SeedGroup{
			Kind:        SeedReduction,
			Instrs:      []*ir.Instr{root},
			RedRoot:     root,
			RedOp:       ir.OpSelect,
			RedInternal: internal,
			RedLeaves:   leaves,
			MinMaxPred:  pred,
			MinMaxCmp:   cmpOp,
			MinMaxInit:  init,
		})
	}
	return out
}

// singleChainUse reports whether v is used only by the next chain link
// (one select and its comparison).
func singleChainUse(users map[ir.Value][]*ir.Instr, v *ir.Instr) bool {
	sel, cmp := 0, 0
	for _, u := range users[v] {
		switch u.Op {
		case ir.OpSelect:
			sel++
		case ir.OpICmp, ir.OpFCmp:
			cmp++
		default:
			return false
		}
	}
	return sel == 1 && cmp == 1
}
