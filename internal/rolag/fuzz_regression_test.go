package rolag_test

// Minimized repros of bugs found by rolag-fuzz, checked in so they run
// as ordinary tier-1 tests forever after. Each *.c file under
// testdata/fuzz-regressions documents its original failure in a header
// comment; the strict oracle must now find every one of them clean.

import (
	"os"
	"path/filepath"
	"testing"

	"rolag/internal/fuzzgen"
)

func TestFuzzRegressions(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-regressions", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression programs found")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			o := &fuzzgen.Oracle{Seeds: 3}
			fail, exercised := o.Check(string(src))
			if !exercised {
				t.Fatal("regression program did not compile")
			}
			if fail != nil {
				t.Fatalf("regression resurfaced: %v", fail)
			}
		})
	}
}
