/*
 * Found by rolag-fuzz (FuzzMutated), reduced by hand.
 *
 * The out-of-bounds store g_tab[46] (the array has 32 elements) used to
 * land silently in the interpreter's flat memory, aliasing whatever
 * allocation happened to be adjacent. Layout-changing transformations
 * then produced spurious buffer differences and the oracle reported a
 * miscompile that wasn't one.
 *
 * Fixed by tracking allocations as spans separated by red zones in the
 * interpreter: the store now traps deterministically, the baseline run
 * faults, and the oracle skips the seed as source-level UB.
 */
int g_sink;
int g_tab[32];
int fz(int *a, int *b, int x, int y) {
	int acc = x;
	a[0] = y + 1;
	a[1] = y + 2;
	a[2] = y + 3;
	a[3] = y + 4;
	g_tab[46] = acc;
	g_sink = g_sink + acc;
	return acc ^ g_tab[3];
}
