/*
 * Found by rolag-fuzz (FuzzGenerated), minimized by internal/reduce.
 *
 * Under AlwaysRoll, a first roll of the two a[0] stores splits the
 * block, moving `return acc` into the split-off exit block. The
 * reduction collector then counted users with a block-local map, missed
 * the cross-block use of the intermediate value, claimed it as
 * tree-internal, and deleted it — leaving a phi with a dangling operand
 * (verifier: "operand %tN is not defined").
 *
 * Fixed by counting users function-wide (Func.Users) in
 * collectReductions and collectMinMaxReductions.
 */
int g_tab[1];
int fz(int *a, int *b, int x, int y) {
	int acc = x;
	acc = 3 + b[0];
	g_tab[0] = acc + 1;
	a[0] = 1;
	a[0] = 2;
	return acc;
}
