package rolag_test

// Determinism: rolling the same source must print byte-identical IR on
// every run. The alignment graph walks several maps internally; any
// decision hanging off map iteration order (as the dominant-op choice in
// tryNeutralBinOp once did) shows up here as run-to-run diffs, which in
// turn poison the service result cache and make fuzz failures
// unreproducible.

import (
	"testing"

	"rolag/internal/rolag"
)

var determinismSources = []struct {
	name string
	src  string
}{
	{
		// Two binary opcodes with equal lane counts: the dominant-op
		// choice in neutral-element padding is a tie and must be broken
		// by lane order, not map order.
		name: "neutral-binop-tie",
		src: `
void tie(int *a, int x) {
	a[0] = x + 1;
	a[1] = x + 2;
	a[2] = x ^ 3;
	a[3] = x ^ 4;
}`,
	},
	{
		// Three-way tie across six lanes.
		name: "neutral-binop-three-way",
		src: `
void tie3(int *a, int x, int y) {
	a[0] = x + y;
	a[1] = x + 1;
	a[2] = x ^ y;
	a[3] = x ^ 2;
	a[4] = x | y;
	a[5] = x | 4;
}`,
	},
	{
		// A mixed function exercising several node kinds at once.
		name: "mixed",
		src: `
extern int ext2(int a, int b);
void mix(int *a, int *b, int x, int y) {
	a[0] = b[0] + x;
	a[1] = b[1] + x;
	a[2] = b[2] + x;
	a[3] = b[3] + x;
	int s = ext2(b[4], y) + ext2(b[5], y) + ext2(b[6], y) + ext2(b[7], y);
	a[4] = s ^ x;
	a[5] = s ^ y;
	a[6] = s + 1;
	a[7] = s + 2;
}`,
	},
}

func TestRollingIsDeterministic(t *testing.T) {
	for _, tc := range determinismSources {
		t.Run(tc.name, func(t *testing.T) {
			opts := rolag.Extensions()
			opts.AlwaysRoll = true
			var first string
			for run := 0; run < 20; run++ {
				work := compile(t, tc.src)
				rolag.RollModule(work, opts)
				got := work.String()
				if run == 0 {
					first = got
					continue
				}
				if got != first {
					t.Fatalf("run %d printed different IR\n--- run 0 ---\n%s--- run %d ---\n%s",
						run, first, run, got)
				}
			}
		})
	}
}
