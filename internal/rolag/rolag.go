package rolag

import (
	"fmt"
	"strings"

	"rolag/internal/analysis"
	"rolag/internal/ir"
	"rolag/internal/obs"
)

// RollModule runs RoLAG on every function of the module and returns the
// accumulated statistics. Analyses are cached across blocks and roll
// attempts through one analysis.Manager.
func RollModule(m *ir.Module, opts *Options) *Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	am := analysis.NewManager()
	stats := NewStats()
	for _, f := range m.Funcs {
		stats.Add(RollFuncInto(f, opts, am, m, nil))
	}
	return stats
}

// RollFunc runs RoLAG on every basic block of f (the main procedure of
// Fig. 5). Newly generated loop blocks are not re-processed.
func RollFunc(f *ir.Func, opts *Options) *Stats {
	return RollFuncInto(f, opts, nil, nil, nil)
}

// RollFuncInto is RollFunc with the analysis cache, the global sink,
// and the observability recorder made explicit. am carries cached
// per-function analyses (nil for a private cache). sink is the module
// that receives the constant-table globals codegen creates (nil for
// f.Parent); the parallel pipeline passes a private staging module per
// function and later adopts the staged globals into the real module in
// deterministic function order, replaying the serial name sequence.
// Cost decisions compare before and after deltas, so pricing rodata
// against the sink instead of the full module changes nothing. rec
// collects optimization remarks and carries the request trace; nil
// disables both with zero added allocations on the hot path.
func RollFuncInto(f *ir.Func, opts *Options, am *analysis.Manager, sink *ir.Module, rec *obs.Recorder) *Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	if am == nil {
		am = analysis.NewManager()
	}
	if sink == nil {
		sink = f.Parent
	}
	stats := NewStats()
	if f.IsDecl() {
		return stats
	}
	// Process blocks by index; rolling block i splits it into
	// (preheader i, loop i+1, exit i+2). The preheader and exit keep
	// leftover straight-line code and are revisited; the loop block is
	// skipped.
	skip := make(map[*ir.Block]bool)
	revisits := make(map[string]int)
	for i := 0; i < len(f.Blocks); i++ {
		b := f.Blocks[i]
		if skip[b] {
			continue
		}
		// Backstop against pathological re-roll chains: a block (by
		// name, which survives snapshots) is revisited a bounded number
		// of times.
		if revisits[b.Name] > 32 {
			continue
		}
		revisits[b.Name]++
		stats.BlocksScanned++
		rolled, loopBlock := rollBlockOnce(f, i, opts, stats, am, sink, rec)
		if rolled {
			skip[loopBlock] = true
			// Revisit the (now shorter) preheader for further seed
			// groups (alternating patterns that were not joinable,
			// second store groups, ...).
			i--
		}
	}
	return stats
}

// AdoptStagedGlobals moves every global staged in sink into m, in
// staging order, renaming each one against m's namespace. The parallel
// pipeline rolls functions concurrently into private sinks and then
// adopts each sink in module function order; because uniqueGlobalName
// numbering is driven purely by the order of requests for a base name,
// this replays the exact name sequence the serial pipeline produces.
func AdoptStagedGlobals(m, sink *ir.Module) {
	for _, g := range sink.Globals {
		m.AdoptGlobal(g, globalBase(g.Name))
	}
	sink.Globals = nil
}

// globalBase strips the ".N" uniquing suffix a staging sink may have
// appended, recovering the base name codegen asked for.
func globalBase(name string) string {
	i := strings.LastIndexByte(name, '.')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// rollBlockOnce tries the seed groups of block f.Blocks[bi] in priority
// order until one rolls profitably. It reports whether a roll happened
// and the created loop block.
func rollBlockOnce(f *ir.Func, bi int, opts *Options, stats *Stats, am *analysis.Manager, sink *ir.Module, rec *obs.Recorder) (bool, *ir.Block) {
	failed := make(map[string]bool)
	for {
		b := f.Blocks[bi]
		fi := am.Info(f)
		t := phaseStart()
		idx := fi.Index()
		groups := collectSeedGroupsInfo(b, opts, fi)
		stats.SeedGroups += countNew(groups, failed, b, idx)

		var attempt []*SeedGroup
		for _, g := range groups {
			if opts.EnableJoint {
				if joined := tryJoinIdx(b, g, groups, idx); joined != nil {
					sig := signature(b, idx, joined...)
					if !failed[sig] {
						attempt = joined
						break
					}
				}
			}
			if !failed[signature(b, idx, g)] {
				attempt = []*SeedGroup{g}
				break
			}
		}
		phaseEnd(rec, PhaseSeed, t)
		if attempt == nil {
			return false, nil
		}
		if rec.On() {
			rec.Add(obs.Remark{
				Pass: "rolag", Name: "seed", Status: obs.StatusAnalysis,
				Func: f.Name, Block: b.Name,
				Instr: instrRef(attempt[0].Instrs[0], idx),
				Kind:  seedKindLabel(attempt),
				Lanes: len(attempt[0].Instrs),
			})
		}
		sig := signature(b, idx, attempt...)
		loopBlock, err := tryRoll(f, bi, opts, stats, am, sink, rec, attempt)
		if err == nil {
			return true, loopBlock
		}
		failed[sig] = true
	}
}

// tryRoll builds the alignment graph, runs the scheduling analysis,
// generates the loop, and keeps it only if the cost model deems it
// smaller (Fig. 5). On any failure the function body is restored.
func tryRoll(f *ir.Func, bi int, opts *Options, stats *Stats, am *analysis.Manager, sink *ir.Module, rec *obs.Recorder, groups []*SeedGroup) (*ir.Block, error) {
	b := f.Blocks[bi]
	fi := am.Info(f)
	lanes := len(groups[0].Instrs)

	t := phaseStart()
	graph, err := buildGraphInfo(b, opts, fi, groups...)
	phaseEnd(rec, PhaseAlign, t)
	if err != nil {
		if rec.On() {
			rec.Add(missRemark("align-reject", f, b, groups, fi, lanes, err))
		}
		return nil, err
	}
	stats.GraphsBuilt++
	if rec.On() {
		emitAlignRemarks(rec, f, b, graph, fi)
	}

	t = phaseStart()
	sched, err := analyzeSchedulingIdx(b, graph, fi.Index())
	phaseEnd(rec, PhaseSchedule, t)
	if err != nil {
		stats.ScheduleFailed++
		if rec.On() {
			rec.Add(missRemark("schedule-reject", f, b, groups, fi, lanes, err))
		}
		return nil, err
	}

	t = phaseStart()
	snapshot := ir.CloneBlocks(f)
	gmark := sink.MarkGlobals()
	// Costs are function-local: the rodata term counts only the constant
	// tables THIS roll adds (the delta over the pre-roll sink), not
	// whatever the sink already holds. The serial pipeline sinks into the
	// shared module while the parallel one uses private staging modules,
	// so absolute sink sizes differ between the two — the delta is the
	// same in both, which keeps the profit decision and the remark cost
	// fields byte-identical across Parallelism values.
	rodataBefore := rodataSize(sink)
	costBefore := opts.Model.FuncUsers(f, fi.Users())

	generateLoopInto(f, b, graph, sched, opts, fi.Users(), sink)
	// The body was rewritten; everything cached about f is stale.
	am.Invalidate(f)

	costAfter := opts.Model.FuncUsers(f, am.Info(f).Users()) + rodataSize(sink) - rodataBefore
	if !opts.AlwaysRoll && costAfter >= costBefore {
		// Not profitable: restore the body and drop added globals. The
		// snapshot swaps in cloned instruction pointers, so the
		// analyses must be invalidated again for the restored body.
		f.Blocks = snapshot
		sink.ResetGlobals(gmark)
		am.Invalidate(f)
		stats.NotProfitable++
		phaseEnd(rec, PhaseCodegen, t)
		err := &errAbort{code: "not-profitable", reason: fmt.Sprintf("not profitable (%d >= %d bytes)", costAfter, costBefore)}
		if rec.On() {
			// fi predates the rewrite, so its index still locates the
			// original seed instructions the remark points at.
			rm := missRemark("not-profitable", f, b, groups, fi, lanes, err)
			rm.CostBefore = costBefore
			rm.CostAfter = costAfter
			rm.DeltaBytes = costAfter - costBefore
			rec.Add(rm)
		}
		return nil, err
	}
	stats.LoopsRolled++
	stats.InstrsRolled += len(graph.Matched)
	graph.AddNodeCounts(stats.NodeCounts)
	phaseEnd(rec, PhaseCodegen, t)
	loopBlock := f.Blocks[bi+1]
	if rec.On() {
		rec.Add(obs.Remark{
			Pass: "rolag", Name: "rolled", Status: obs.StatusPassed,
			Func: f.Name, Block: b.Name,
			Instr:      seedRef(groups, fi),
			Kind:       seedKindLabel(groups),
			Detail:     fmt.Sprintf("rolled %d matched instructions into loop %s", len(graph.Matched), loopBlock.Name),
			Lanes:      lanes,
			CostBefore: costBefore,
			CostAfter:  costAfter,
			DeltaBytes: costAfter - costBefore,
		})
	}
	return loopBlock, nil
}

// seedKindLabel names the seed-group kind of an attempt; joint
// attempts are prefixed so the taxonomy distinguishes them.
func seedKindLabel(groups []*SeedGroup) string {
	label := groups[0].Kind.String()
	if len(groups) > 1 {
		return "joint-" + label
	}
	return label
}

// instrRef renders a stable instruction reference for remark
// provenance: the SSA name when the instruction produces a value,
// otherwise its opcode and position within the block.
func instrRef(in *ir.Instr, idx map[*ir.Instr]int) string {
	if in.Name != "" {
		return "%" + in.Name
	}
	return fmt.Sprintf("%s@%d", in.Op, idx[in])
}

// seedRef is instrRef on the first seed instruction of an attempt.
// After codegen rewrote the block the original seed pointers are gone
// from the index, so the position falls back to 0; the opcode and
// block name still locate the decision.
func seedRef(groups []*SeedGroup, fi *analysis.FuncInfo) string {
	return instrRef(groups[0].Instrs[0], fi.Index())
}

// missRemark builds the common shape of a rejection remark from an
// errAbort: the stable code lands in Reason, the human text in Detail,
// and the first seed instruction anchors the provenance.
func missRemark(name string, f *ir.Func, b *ir.Block, groups []*SeedGroup, fi *analysis.FuncInfo, lanes int, err error) obs.Remark {
	rm := obs.Remark{
		Pass: "rolag", Name: name, Status: obs.StatusMissed,
		Func: f.Name, Block: b.Name,
		Instr: seedRef(groups, fi),
		Kind:  seedKindLabel(groups),
		Lanes: lanes,
	}
	if ab, ok := err.(*errAbort); ok {
		rm.Reason = ab.code
		rm.Detail = ab.reason
	} else if err != nil {
		rm.Reason = name
		rm.Detail = err.Error()
	}
	return rm
}

// emitAlignRemarks records one analysis remark per alignment-graph
// node — the paper's per-node accept/mismatch record. Mismatch nodes
// carry the lane type as the mismatch kind.
func emitAlignRemarks(rec *obs.Recorder, f *ir.Func, b *ir.Block, graph *Graph, fi *analysis.FuncInfo) {
	idx := fi.Index()
	for _, n := range graph.Nodes {
		rm := obs.Remark{
			Pass: "rolag", Name: "align-node", Status: obs.StatusAnalysis,
			Func: f.Name, Block: b.Name,
			Kind:  n.Kind.String(),
			Lanes: len(n.Vals),
		}
		for _, in := range n.Insts {
			if in != nil {
				rm.Instr = instrRef(in, idx)
				break
			}
		}
		if n.Kind == KindMismatch && len(n.Vals) > 0 && n.Vals[0] != nil {
			rm.Detail = "mismatching lanes of type " + n.Vals[0].Type().String()
		}
		rec.Add(rm)
	}
}

// rodataSize sums the read-only global data the cost model attributes to
// the text segment.
func rodataSize(m *ir.Module) int {
	n := 0
	for _, g := range m.Globals {
		if g.ReadOnly {
			n += g.Elem.Size()
		}
	}
	return n
}

// signature identifies a (joint) seed-group attempt stably across body
// snapshots: block name plus each seed's index within the block. idx
// must map b's instructions to their position in b (a cached
// analysis.FuncInfo.Index works: it records each instruction's position
// within its own block).
func signature(b *ir.Block, idx map[*ir.Instr]int, groups ...*SeedGroup) string {
	var sb strings.Builder
	sb.WriteString(b.Name)
	for _, g := range groups {
		fmt.Fprintf(&sb, "|k%d:", g.Kind)
		for _, in := range g.Instrs {
			fmt.Fprintf(&sb, "%d,", idx[in])
		}
	}
	return sb.String()
}

func countNew(groups []*SeedGroup, failed map[string]bool, b *ir.Block, idx map[*ir.Instr]int) int {
	n := 0
	for _, g := range groups {
		if !failed[signature(b, idx, g)] {
			n++
		}
	}
	return n
}
