package rolag

import (
	"fmt"
	"strings"

	"rolag/internal/ir"
)

// RollModule runs RoLAG on every function of the module and returns the
// accumulated statistics.
func RollModule(m *ir.Module, opts *Options) *Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	stats := NewStats()
	for _, f := range m.Funcs {
		stats.Add(RollFunc(f, opts))
	}
	return stats
}

// RollFunc runs RoLAG on every basic block of f (the main procedure of
// Fig. 5). Newly generated loop blocks are not re-processed.
func RollFunc(f *ir.Func, opts *Options) *Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	stats := NewStats()
	if f.IsDecl() {
		return stats
	}
	// Process blocks by index; rolling block i splits it into
	// (preheader i, loop i+1, exit i+2). The preheader and exit keep
	// leftover straight-line code and are revisited; the loop block is
	// skipped.
	skip := make(map[*ir.Block]bool)
	revisits := make(map[string]int)
	for i := 0; i < len(f.Blocks); i++ {
		b := f.Blocks[i]
		if skip[b] {
			continue
		}
		// Backstop against pathological re-roll chains: a block (by
		// name, which survives snapshots) is revisited a bounded number
		// of times.
		if revisits[b.Name] > 32 {
			continue
		}
		revisits[b.Name]++
		stats.BlocksScanned++
		rolled, loopBlock := rollBlockOnce(f, i, opts, stats)
		if rolled {
			skip[loopBlock] = true
			// Revisit the (now shorter) preheader for further seed
			// groups (alternating patterns that were not joinable,
			// second store groups, ...).
			i--
		}
	}
	return stats
}

// rollBlockOnce tries the seed groups of block f.Blocks[bi] in priority
// order until one rolls profitably. It reports whether a roll happened
// and the created loop block.
func rollBlockOnce(f *ir.Func, bi int, opts *Options, stats *Stats) (bool, *ir.Block) {
	failed := make(map[string]bool)
	for {
		b := f.Blocks[bi]
		groups := CollectSeedGroups(b, opts)
		stats.SeedGroups += countNew(groups, failed, b)

		var attempt []*SeedGroup
		for _, g := range groups {
			if opts.EnableJoint {
				if joined := TryJoin(b, g, groups); joined != nil {
					sig := signature(b, joined...)
					if !failed[sig] {
						attempt = joined
						break
					}
				}
			}
			if !failed[signature(b, g)] {
				attempt = []*SeedGroup{g}
				break
			}
		}
		if attempt == nil {
			return false, nil
		}
		sig := signature(b, attempt...)
		loopBlock, err := tryRoll(f, bi, opts, stats, attempt)
		if err == nil {
			return true, loopBlock
		}
		failed[sig] = true
	}
}

// tryRoll builds the alignment graph, runs the scheduling analysis,
// generates the loop, and keeps it only if the cost model deems it
// smaller (Fig. 5). On any failure the function body is restored.
func tryRoll(f *ir.Func, bi int, opts *Options, stats *Stats, groups []*SeedGroup) (*ir.Block, error) {
	b := f.Blocks[bi]
	graph, err := BuildGraph(b, opts, groups...)
	if err != nil {
		return nil, err
	}
	stats.GraphsBuilt++
	sched, err := AnalyzeScheduling(b, graph)
	if err != nil {
		stats.ScheduleFailed++
		return nil, err
	}

	snapshot := ir.CloneBlocks(f)
	nGlobals := len(f.Parent.Globals)
	costBefore := opts.Model.Func(f) + rodataSize(f.Parent)

	GenerateLoop(f, b, graph, sched, opts)

	costAfter := opts.Model.Func(f) + rodataSize(f.Parent)
	if !opts.AlwaysRoll && costAfter >= costBefore {
		// Not profitable: restore the body and drop added globals.
		f.Blocks = snapshot
		f.Parent.Globals = f.Parent.Globals[:nGlobals]
		stats.NotProfitable++
		return nil, &errAbort{reason: fmt.Sprintf("not profitable (%d >= %d bytes)", costAfter, costBefore)}
	}
	stats.LoopsRolled++
	stats.InstrsRolled += len(graph.Matched)
	for kind, c := range graph.NodeCounts() {
		stats.NodeCounts[kind] += c
	}
	return f.Blocks[bi+1], nil
}

// rodataSize sums the read-only global data the cost model attributes to
// the text segment.
func rodataSize(m *ir.Module) int {
	n := 0
	for _, g := range m.Globals {
		if g.ReadOnly {
			n += g.Elem.Size()
		}
	}
	return n
}

// signature identifies a (joint) seed-group attempt stably across body
// snapshots: block name plus each seed's index within the block.
func signature(b *ir.Block, groups ...*SeedGroup) string {
	idx := make(map[*ir.Instr]int, len(b.Instrs))
	for i, in := range b.Instrs {
		idx[in] = i
	}
	var sb strings.Builder
	sb.WriteString(b.Name)
	for _, g := range groups {
		fmt.Fprintf(&sb, "|k%d:", g.Kind)
		for _, in := range g.Instrs {
			fmt.Fprintf(&sb, "%d,", idx[in])
		}
	}
	return sb.String()
}

func countNew(groups []*SeedGroup, failed map[string]bool, b *ir.Block) int {
	n := 0
	for _, g := range groups {
		if !failed[signature(b, g)] {
			n++
		}
	}
	return n
}
