package rolag

import (
	"fmt"
	"strings"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// RollModule runs RoLAG on every function of the module and returns the
// accumulated statistics. Analyses are cached across blocks and roll
// attempts through one analysis.Manager.
func RollModule(m *ir.Module, opts *Options) *Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	am := analysis.NewManager()
	stats := NewStats()
	for _, f := range m.Funcs {
		stats.Add(RollFuncInto(f, opts, am, m))
	}
	return stats
}

// RollFunc runs RoLAG on every basic block of f (the main procedure of
// Fig. 5). Newly generated loop blocks are not re-processed.
func RollFunc(f *ir.Func, opts *Options) *Stats {
	return RollFuncInto(f, opts, nil, nil)
}

// RollFuncInto is RollFunc with the analysis cache and the global sink
// made explicit. am carries cached per-function analyses (nil for a
// private cache). sink is the module that receives the constant-table
// globals codegen creates (nil for f.Parent); the parallel pipeline
// passes a private staging module per function and later adopts the
// staged globals into the real module in deterministic function order,
// replaying the serial name sequence. Cost decisions compare before
// and after deltas, so pricing rodata against the sink instead of the
// full module changes nothing.
func RollFuncInto(f *ir.Func, opts *Options, am *analysis.Manager, sink *ir.Module) *Stats {
	if opts == nil {
		opts = DefaultOptions()
	}
	if am == nil {
		am = analysis.NewManager()
	}
	if sink == nil {
		sink = f.Parent
	}
	stats := NewStats()
	if f.IsDecl() {
		return stats
	}
	// Process blocks by index; rolling block i splits it into
	// (preheader i, loop i+1, exit i+2). The preheader and exit keep
	// leftover straight-line code and are revisited; the loop block is
	// skipped.
	skip := make(map[*ir.Block]bool)
	revisits := make(map[string]int)
	for i := 0; i < len(f.Blocks); i++ {
		b := f.Blocks[i]
		if skip[b] {
			continue
		}
		// Backstop against pathological re-roll chains: a block (by
		// name, which survives snapshots) is revisited a bounded number
		// of times.
		if revisits[b.Name] > 32 {
			continue
		}
		revisits[b.Name]++
		stats.BlocksScanned++
		rolled, loopBlock := rollBlockOnce(f, i, opts, stats, am, sink)
		if rolled {
			skip[loopBlock] = true
			// Revisit the (now shorter) preheader for further seed
			// groups (alternating patterns that were not joinable,
			// second store groups, ...).
			i--
		}
	}
	return stats
}

// AdoptStagedGlobals moves every global staged in sink into m, in
// staging order, renaming each one against m's namespace. The parallel
// pipeline rolls functions concurrently into private sinks and then
// adopts each sink in module function order; because uniqueGlobalName
// numbering is driven purely by the order of requests for a base name,
// this replays the exact name sequence the serial pipeline produces.
func AdoptStagedGlobals(m, sink *ir.Module) {
	for _, g := range sink.Globals {
		m.AdoptGlobal(g, globalBase(g.Name))
	}
	sink.Globals = nil
}

// globalBase strips the ".N" uniquing suffix a staging sink may have
// appended, recovering the base name codegen asked for.
func globalBase(name string) string {
	i := strings.LastIndexByte(name, '.')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// rollBlockOnce tries the seed groups of block f.Blocks[bi] in priority
// order until one rolls profitably. It reports whether a roll happened
// and the created loop block.
func rollBlockOnce(f *ir.Func, bi int, opts *Options, stats *Stats, am *analysis.Manager, sink *ir.Module) (bool, *ir.Block) {
	failed := make(map[string]bool)
	for {
		b := f.Blocks[bi]
		fi := am.Info(f)
		t := phaseStart()
		idx := fi.Index()
		groups := collectSeedGroupsInfo(b, opts, fi)
		stats.SeedGroups += countNew(groups, failed, b, idx)

		var attempt []*SeedGroup
		for _, g := range groups {
			if opts.EnableJoint {
				if joined := tryJoinIdx(b, g, groups, idx); joined != nil {
					sig := signature(b, idx, joined...)
					if !failed[sig] {
						attempt = joined
						break
					}
				}
			}
			if !failed[signature(b, idx, g)] {
				attempt = []*SeedGroup{g}
				break
			}
		}
		phaseEnd(PhaseSeed, t)
		if attempt == nil {
			return false, nil
		}
		sig := signature(b, idx, attempt...)
		loopBlock, err := tryRoll(f, bi, opts, stats, am, sink, attempt)
		if err == nil {
			return true, loopBlock
		}
		failed[sig] = true
	}
}

// tryRoll builds the alignment graph, runs the scheduling analysis,
// generates the loop, and keeps it only if the cost model deems it
// smaller (Fig. 5). On any failure the function body is restored.
func tryRoll(f *ir.Func, bi int, opts *Options, stats *Stats, am *analysis.Manager, sink *ir.Module, groups []*SeedGroup) (*ir.Block, error) {
	b := f.Blocks[bi]
	fi := am.Info(f)

	t := phaseStart()
	graph, err := buildGraphInfo(b, opts, fi, groups...)
	phaseEnd(PhaseAlign, t)
	if err != nil {
		return nil, err
	}
	stats.GraphsBuilt++

	t = phaseStart()
	sched, err := analyzeSchedulingIdx(b, graph, fi.Index())
	phaseEnd(PhaseSchedule, t)
	if err != nil {
		stats.ScheduleFailed++
		return nil, err
	}

	t = phaseStart()
	snapshot := ir.CloneBlocks(f)
	gmark := sink.MarkGlobals()
	costBefore := opts.Model.FuncUsers(f, fi.Users()) + rodataSize(sink)

	generateLoopInto(f, b, graph, sched, opts, fi.Users(), sink)
	// The body was rewritten; everything cached about f is stale.
	am.Invalidate(f)

	costAfter := opts.Model.FuncUsers(f, am.Info(f).Users()) + rodataSize(sink)
	if !opts.AlwaysRoll && costAfter >= costBefore {
		// Not profitable: restore the body and drop added globals. The
		// snapshot swaps in cloned instruction pointers, so the
		// analyses must be invalidated again for the restored body.
		f.Blocks = snapshot
		sink.ResetGlobals(gmark)
		am.Invalidate(f)
		stats.NotProfitable++
		phaseEnd(PhaseCodegen, t)
		return nil, &errAbort{reason: fmt.Sprintf("not profitable (%d >= %d bytes)", costAfter, costBefore)}
	}
	stats.LoopsRolled++
	stats.InstrsRolled += len(graph.Matched)
	graph.AddNodeCounts(stats.NodeCounts)
	phaseEnd(PhaseCodegen, t)
	return f.Blocks[bi+1], nil
}

// rodataSize sums the read-only global data the cost model attributes to
// the text segment.
func rodataSize(m *ir.Module) int {
	n := 0
	for _, g := range m.Globals {
		if g.ReadOnly {
			n += g.Elem.Size()
		}
	}
	return n
}

// signature identifies a (joint) seed-group attempt stably across body
// snapshots: block name plus each seed's index within the block. idx
// must map b's instructions to their position in b (a cached
// analysis.FuncInfo.Index works: it records each instruction's position
// within its own block).
func signature(b *ir.Block, idx map[*ir.Instr]int, groups ...*SeedGroup) string {
	var sb strings.Builder
	sb.WriteString(b.Name)
	for _, g := range groups {
		fmt.Fprintf(&sb, "|k%d:", g.Kind)
		for _, in := range g.Instrs {
			fmt.Fprintf(&sb, "%d,", idx[in])
		}
	}
	return sb.String()
}

func countNew(groups []*SeedGroup, failed map[string]bool, b *ir.Block, idx map[*ir.Instr]int) int {
	n := 0
	for _, g := range groups {
		if !failed[signature(b, idx, g)] {
			n++
		}
	}
	return n
}
