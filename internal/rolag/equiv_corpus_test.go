package rolag_test

// Corpus-wide semantic equivalence: every transformation RoLAG performs
// on the synthesized AnghaBench corpus and on the (integer-safe) TSVC
// kernels must preserve behaviour under the interpreter — return values,
// final memory, and the external-call trace.

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/reroll"
	"rolag/internal/rolag"
	"rolag/internal/unroll"
	"rolag/internal/workloads/angha"
	"rolag/internal/workloads/tsvc"
)

func compileSrc(t *testing.T, src, name string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("%s: verify: %v", name, err)
	}
	return m
}

// TestCorpusEquivalence rolls every function of a generated corpus and
// checks observational equivalence against the unoptimized build.
func TestCorpusEquivalence(t *testing.T) {
	funcs := angha.Generate(400, 7)
	rolled := 0
	for _, fn := range funcs {
		orig := compileSrc(t, fn.Src, fn.Name)
		work := compileSrc(t, fn.Src, fn.Name)
		stats := rolag.RollModule(work, nil)
		passes.Standard().Run(work)
		if err := work.Verify(); err != nil {
			t.Fatalf("%s (%s): verify after roll: %v\n%s", fn.Name, fn.Family, err, work)
		}
		rolled += stats.LoopsRolled
		for _, f := range work.Funcs {
			if f.IsDecl() || orig.FindFunc(f.Name) == nil {
				continue
			}
			if err := interp.CheckEquiv(orig, work, f.Name, 2, nil); err != nil {
				t.Errorf("%s (%s): behaviour changed: %v\nrolled IR:\n%s",
					fn.Name, fn.Family, err, work.FindFunc(f.Name))
			}
		}
	}
	if rolled < 50 {
		t.Errorf("only %d loops rolled across the corpus; generator or optimizer regressed", rolled)
	}
	t.Logf("corpus: %d functions, %d loops rolled, all equivalent", len(funcs), rolled)
}

// TestCorpusEquivalenceAlwaysRoll repeats the corpus check with the
// profitability gate disabled, exercising code generation paths that the
// cost model would normally reject (mismatch arrays, extraction arrays).
func TestCorpusEquivalenceAlwaysRoll(t *testing.T) {
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	funcs := angha.Generate(200, 11)
	rolled := 0
	for _, fn := range funcs {
		orig := compileSrc(t, fn.Src, fn.Name)
		work := compileSrc(t, fn.Src, fn.Name)
		stats := rolag.RollModule(work, opts)
		passes.Standard().Run(work)
		if err := work.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", fn.Name, err)
		}
		rolled += stats.LoopsRolled
		for _, f := range work.Funcs {
			if f.IsDecl() || orig.FindFunc(f.Name) == nil {
				continue
			}
			if err := interp.CheckEquiv(orig, work, f.Name, 2, nil); err != nil {
				t.Errorf("%s (%s, always-roll): %v", fn.Name, fn.Family, err)
			}
		}
	}
	t.Logf("always-roll corpus: %d functions, %d loops rolled", len(funcs), rolled)
}

// TestTSVCEquivalence checks, for every TSVC kernel whose arithmetic is
// reassociation-free under our defaults (FastMath off), that unroll ×8
// followed by RoLAG preserves behaviour exactly.
func TestTSVCEquivalence(t *testing.T) {
	rolledTotal := 0
	for _, kr := range tsvc.Kernels() {
		orig := compileSrc(t, kr.Src, kr.Name)
		work := compileSrc(t, kr.Src, kr.Name)
		for _, f := range work.Funcs {
			unroll.UnrollAll(f, 8)
		}
		passes.Standard().Run(work)
		// FastMath off: float reductions are left alone, so bit-exact
		// comparison is sound.
		stats := rolag.RollModule(work, nil)
		passes.Standard().Run(work)
		if err := work.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", kr.Name, err)
		}
		rolledTotal += stats.LoopsRolled
		if err := interp.CheckEquiv(orig, work, kr.Func, 2, &interp.Harness{MaxSteps: 3_000_000, BufBytes: 1 << 16}); err != nil {
			t.Errorf("%s: behaviour changed after unroll+roll: %v", kr.Name, err)
		}
	}
	t.Logf("TSVC: %d loops rolled across the suite (fast-math off), all equivalent", rolledTotal)
}

// TestTSVCRerollEquivalence does the same for the LLVM-style baseline.
func TestTSVCRerollEquivalence(t *testing.T) {
	// Imported lazily to avoid a package cycle in the test file.
	for _, kr := range tsvc.Kernels() {
		orig := compileSrc(t, kr.Src, kr.Name)
		work := compileSrc(t, kr.Src, kr.Name)
		for _, f := range work.Funcs {
			unroll.UnrollAll(f, 8)
		}
		passes.Standard().Run(work)
		n := 0
		for _, f := range work.Funcs {
			n += rerollFunc(f)
		}
		if n == 0 {
			continue
		}
		passes.Standard().Run(work)
		if err := work.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", kr.Name, err)
		}
		if err := interp.CheckEquiv(orig, work, kr.Func, 2, &interp.Harness{MaxSteps: 3_000_000, BufBytes: 1 << 16}); err != nil {
			t.Errorf("%s: baseline rerolling changed behaviour: %v", kr.Name, err)
		}
	}
}

func rerollFunc(f *ir.Func) int { return reroll.RerollFunc(f) }
