// Package rolag implements RoLAG, the paper's loop-rolling optimization
// for straight-line code (Rocha et al., CGO 2022). RoLAG aligns the SSA
// graphs hanging off groups of seed instructions (stores, calls,
// reduction roots) bottom-up into an alignment graph, verifies with a
// scheduling analysis that the matched instructions can be rearranged
// into loop iterations, generates a rolled loop, and keeps it only when
// a code-size cost model says the loop is smaller than the straight-line
// original.
package rolag

import (
	"rolag/internal/costmodel"
)

// Options control which parts of the technique are enabled; the defaults
// match the full system described in the paper. The Enable* flags exist
// for the Fig. 19 ablation (special nodes off collapses profitable rolls
// to a small fraction).
type Options struct {
	// EnableIntSeq enables monotonic integer sequence nodes (§IV.C1).
	EnableIntSeq bool
	// EnableNeutralPtr enables the gep/pointer identity (§IV.C2).
	EnableNeutralPtr bool
	// EnableNeutralBinOp enables neutral-element padding for binary
	// operations (§IV.C3).
	EnableNeutralBinOp bool
	// EnableCommutative enables similarity-driven operand reordering of
	// commutative operations (§IV.C3).
	EnableCommutative bool
	// EnableRecurrence enables chained-dependence recurrence nodes
	// (§IV.C4).
	EnableRecurrence bool
	// EnableReduction enables reduction-tree seeds (§IV.C5).
	EnableReduction bool
	// EnableJoint enables joining alternating seed groups (§IV.C6).
	EnableJoint bool
	// EnableMinMaxReduction enables select-based min/max reduction
	// trees. The paper lists this as unsupported future work (§V.C,
	// Fig. 20b); it is implemented here as an extension and therefore
	// ships disabled in DefaultOptions.
	EnableMinMaxReduction bool
	// EnableMismatch allows mismatching nodes (lowered to arrays); when
	// false, any mismatch aborts the candidate.
	EnableMismatch bool
	// FastMath permits reassociating floating-point reductions.
	FastMath bool
	// AlwaysRoll skips the profitability analysis and keeps every valid
	// rolled loop (ablation of §IV.F).
	AlwaysRoll bool
	// MinLanes is the minimum number of seed instructions in a group
	// (i.e. loop iterations) worth considering. Default 2.
	MinLanes int
	// Model is the code-size cost model (default costmodel.Default).
	Model *costmodel.Model
}

// DefaultOptions returns the full configuration used in the paper's main
// evaluation.
func DefaultOptions() *Options {
	return &Options{
		EnableIntSeq:       true,
		EnableNeutralPtr:   true,
		EnableNeutralBinOp: true,
		EnableCommutative:  true,
		EnableRecurrence:   true,
		EnableReduction:    true,
		EnableJoint:        true,
		EnableMismatch:     true,
		FastMath:           false,
		MinLanes:           2,
		Model:              costmodel.Default(),
	}
}

// Extensions returns the default configuration plus the beyond-paper
// extensions (currently select-based min/max reductions).
func Extensions() *Options {
	o := DefaultOptions()
	o.EnableMinMaxReduction = true
	return o
}

// NoSpecialNodes returns options with every special node kind disabled,
// keeping only plain match/identical/mismatch alignment — the ablation in
// Fig. 19 of the paper.
func NoSpecialNodes() *Options {
	o := DefaultOptions()
	o.EnableIntSeq = false
	o.EnableNeutralPtr = false
	o.EnableNeutralBinOp = false
	o.EnableCommutative = false
	o.EnableRecurrence = false
	o.EnableReduction = false
	o.EnableJoint = false
	return o
}

// NodeKind classifies alignment-graph nodes (see §IV.B–C).
type NodeKind int

// Alignment-graph node kinds.
const (
	KindInvalid NodeKind = iota
	// KindMatch groups isomorphic instructions merged into one
	// instruction in the rolled loop.
	KindMatch
	// KindIdentical groups lanes that are all the same value
	// (loop-invariant).
	KindIdentical
	// KindMismatch groups differing values, lowered to an array indexed
	// by the induction variable.
	KindMismatch
	// KindIntSeq is a monotonic integer sequence start..end,step lowered
	// to a linear function of the induction variable.
	KindIntSeq
	// KindRecurrence is a chained dependence lowered to a phi.
	KindRecurrence
	// KindReduction represents a whole reduction tree, lowered to an
	// accumulator phi plus one binary operation.
	KindReduction
	// KindJoint stitches alternating seed groups into one loop body; it
	// generates no code itself.
	KindJoint
)

var kindNames = map[NodeKind]string{
	KindMatch:      "match",
	KindIdentical:  "identical",
	KindMismatch:   "mismatch",
	KindIntSeq:     "sequence",
	KindRecurrence: "recurrence",
	KindReduction:  "reduction",
	KindJoint:      "joint",
}

func (k NodeKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "invalid"
}

// Stats aggregates outcomes of a RoLAG run. NodeCounts tallies node kinds
// appearing in profitable (kept) alignment graphs, reproducing the
// breakdowns of Fig. 16 and Fig. 19.
type Stats struct {
	BlocksScanned  int
	SeedGroups     int
	GraphsBuilt    int
	ScheduleFailed int
	NotProfitable  int
	LoopsRolled    int
	NodeCounts     map[NodeKind]int
	InstrsRolled   int
}

// NewStats returns an empty Stats.
func NewStats() *Stats {
	return &Stats{NodeCounts: make(map[NodeKind]int)}
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.BlocksScanned += other.BlocksScanned
	s.SeedGroups += other.SeedGroups
	s.GraphsBuilt += other.GraphsBuilt
	s.ScheduleFailed += other.ScheduleFailed
	s.NotProfitable += other.NotProfitable
	s.LoopsRolled += other.LoopsRolled
	s.InstrsRolled += other.InstrsRolled
	for k, v := range other.NodeCounts {
		s.NodeCounts[k] += v
	}
}
