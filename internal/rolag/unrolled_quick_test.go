package rolag_test

import (
	"testing"

	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/rolag"
	"rolag/internal/unroll"
)

const kernelsSrc = `
void k_init(int *a) {
	for (int i = 0; i < 64; i++) a[i] = i;
}
void k_vadd(int *a, int *b, int *c) {
	for (int i = 0; i < 64; i++) c[i] = a[i] + b[i];
}
int k_sum(int *a) {
	int s = 0;
	for (int i = 0; i < 64; i++) s += a[i];
	return s;
}
`

func buildUnrolled(t *testing.T) (*ir.Module, *ir.Module) {
	t.Helper()
	orig := compile(t, kernelsSrc)
	work := compile(t, kernelsSrc)
	for _, f := range work.Funcs {
		unroll.UnrollAll(f, 8)
	}
	passes.Standard().Run(work)
	if err := work.Verify(); err != nil {
		t.Fatalf("unrolled verify: %v", err)
	}
	return orig, work
}

func TestRollUnrolledKernels(t *testing.T) {
	orig, work := buildUnrolled(t)
	stats := rolag.RollModule(work, nil)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	t.Logf("stats: %+v", stats)
	if stats.LoopsRolled != 3 {
		t.Errorf("rolled %d loops, want 3\n%s", stats.LoopsRolled, work)
	}
	passes.Standard().Run(work)
	for _, name := range []string{"k_init", "k_vadd", "k_sum"} {
		if err := interp.CheckEquiv(orig, work, name, 3, nil); err != nil {
			t.Errorf("@%s: %v", name, err)
		}
	}
	t.Log("\n" + work.FindFunc("k_vadd").String())
}

// Alternating store/call pattern exercising the joint node (§IV.C6).
const jointSrc = `
extern void sink(int x);
void alternating(int *a) {
	a[0] = 5; sink(10);
	a[1] = 6; sink(20);
	a[2] = 7; sink(30);
	a[3] = 8; sink(40);
	a[4] = 9; sink(50);
	a[5] = 10; sink(60);
}
`

func TestRollJoint(t *testing.T) {
	orig := compile(t, jointSrc)
	work := compile(t, jointSrc)
	stats := rolag.RollModule(work, nil)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	t.Logf("stats: %+v", stats)
	t.Log("\n" + work.FindFunc("alternating").String())
	if stats.NodeCounts[rolag.KindJoint] == 0 {
		t.Errorf("expected a joint node; counts %+v", stats.NodeCounts)
	}
	if err := interp.CheckEquiv(orig, work, "alternating", 4, nil); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}
