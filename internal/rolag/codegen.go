package rolag

import (
	"rolag/internal/ir"
)

// GenerateLoop rewrites block b according to the alignment graph and
// schedule (§IV.E): b keeps the pre-loop code and becomes the preheader,
// a new single-block loop executes one graph iteration per lane, and a
// new exit block receives the post-loop code, the extracted external
// values and b's original terminator.
func GenerateLoop(f *ir.Func, b *ir.Block, g *Graph, sched *Schedule, opts *Options) {
	// Users are needed to find external uses of matched instructions;
	// compute before any mutation.
	generateLoopInto(f, b, g, sched, opts, f.Users(), f.Parent)
}

// generateLoopInto is GenerateLoop with the pre-mutation def-use chains
// supplied by the caller (from the analysis cache) and an explicit sink
// module for the constant-table globals codegen creates. The parallel
// pipeline passes a private staging module as sink so concurrent
// functions never touch the shared module; the serial path passes
// f.Parent.
func generateLoopInto(f *ir.Func, b *ir.Block, g *Graph, sched *Schedule, opts *Options, users map[ir.Value][]*ir.Instr, sink *ir.Module) {
	lanes := g.Root.Lanes()
	mod := sink

	// Create the loop and exit blocks right after b.
	loopB := &ir.Block{Name: f.UniqueName("roll.loop"), Parent: f}
	exitB := &ir.Block{Name: f.UniqueName("roll.exit"), Parent: f}
	bi := blockIndex(f, b)
	f.Blocks = append(f.Blocks, nil, nil)
	copy(f.Blocks[bi+3:], f.Blocks[bi+1:])
	f.Blocks[bi+1] = loopB
	f.Blocks[bi+2] = exitB

	// Successor phis that named b as a predecessor now receive control
	// from the exit block (b's terminator moves there). This includes
	// b's own phis when b is a loop body.
	for _, ob := range f.Blocks {
		for _, phi := range ob.Phis() {
			for i, pb := range phi.Blocks {
				if pb == b {
					phi.Blocks[i] = exitB
				}
			}
		}
	}

	// Partition b: phis + PRE stay; POST and the terminator move to the
	// exit block; matched instructions are detached (their code is
	// regenerated inside the loop).
	term := b.Terminator()
	var kept []*ir.Instr
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			kept = append(kept, in)
		}
	}
	inPre := make(map[*ir.Instr]bool, len(sched.Pre))
	for _, in := range sched.Pre {
		inPre[in] = true
	}
	for _, in := range b.Instrs {
		if inPre[in] {
			kept = append(kept, in)
		}
	}
	inPost := make(map[*ir.Instr]bool, len(sched.Post))
	for _, in := range sched.Post {
		inPost[in] = true
	}
	var moved []*ir.Instr
	for _, in := range b.Instrs {
		if inPost[in] {
			moved = append(moved, in)
		}
	}
	b.Instrs = kept
	for _, in := range moved {
		exitB.Append(in)
	}
	exitB.Append(term)

	pre := ir.NewBuilder(b) // appends mismatch materialization then br
	loop := ir.NewBuilder(loopB)

	// Induction variable.
	iv := loop.Phi(ir.I64, "roll.iv")
	ir.AddIncoming(iv, ir.ConstInt(ir.I64, 0), b)
	cg := &codegen{
		f: f, mod: mod, b: b, loopB: loopB, exitB: exitB,
		pre: pre, loop: loop, iv: iv, lanes: lanes, opts: opts, graph: g,
	}
	for _, n := range sched.Emission {
		cg.gen(n)
	}
	// Patch recurrence phis now that their parents exist.
	for _, p := range cg.recurrencePatches {
		ir.AddIncoming(p.phi, p.node.RefParent.gen, loopB)
	}

	// Extraction of externally used values (§IV.E).
	cg.extractExternalUses(users, sched)

	// Latch.
	ivn := loop.Add(iv, ir.ConstInt(ir.I64, 1))
	ir.AddIncoming(iv, ivn, loopB)
	cmp := loop.ICmp(ir.PredSLT, ivn, ir.ConstInt(ir.I64, int64(lanes)))
	loop.CondBr(cmp, loopB, exitB)

	// Enter the loop from the preheader.
	pre.Br(loopB)
}

type recurrencePatch struct {
	phi  *ir.Instr
	node *Node
}

type codegen struct {
	f     *ir.Func
	mod   *ir.Module
	b     *ir.Block // preheader
	loopB *ir.Block
	exitB *ir.Block
	pre   *ir.Builder
	loop  *ir.Builder
	iv    *ir.Instr
	lanes int
	opts  *Options
	graph *Graph

	recurrencePatches []recurrencePatch
	phiCount          int // phis inserted at the head of loopB (after iv)
}

// gen materializes the in-loop value of node n (stored in n.gen).
func (cg *codegen) gen(n *Node) {
	switch n.Kind {
	case KindIdentical:
		n.gen = n.Vals[0]
	case KindIntSeq:
		n.gen = cg.genIntSeq(n)
	case KindMismatch:
		n.gen = cg.genMismatch(n)
	case KindMatch:
		n.gen = cg.genMatch(n)
	case KindRecurrence:
		phi := cg.newLoopPhi(n.RefParent.Typ, "roll.rec")
		ir.AddIncoming(phi, n.Init, cg.b)
		cg.recurrencePatches = append(cg.recurrencePatches, recurrencePatch{phi: phi, node: n})
		n.gen = phi
	case KindReduction:
		n.gen = cg.genReduction(n)
	case KindJoint:
		// Joint nodes only fix the order of their groups (handled by the
		// emission order); they generate no code.
	}
}

// newLoopPhi inserts a phi at the head of the loop block (phis must be
// grouped before other instructions).
func (cg *codegen) newLoopPhi(t ir.Type, name string) *ir.Instr {
	phi := &ir.Instr{Op: ir.OpPhi, Typ: t, Name: cg.f.UniqueName(name)}
	cg.phiCount++
	cg.loopB.InsertAt(cg.phiCount, phi) // slot 0 holds the induction phi
	if cg.loop.At >= 0 {
		cg.loop.At++
	}
	return phi
}

// genIntSeq lowers S0..Sn,step to S0 + iv*step, cast to the sequence's
// type (§IV.C1).
func (cg *codegen) genIntSeq(n *Node) ir.Value {
	var v ir.Value = cg.iv
	if n.Step != 1 {
		v = cg.loop.Mul(v, ir.ConstInt(ir.I64, n.Step))
	}
	if n.Start != 0 {
		v = cg.loop.Add(v, ir.ConstInt(ir.I64, n.Start))
	}
	if n.SeqTyp.Bits < 64 {
		v = cg.loop.Cast(ir.OpTrunc, v, n.SeqTyp)
	}
	return v
}

// genMismatch lowers a mismatching node: constant lanes become a global
// constant array, anything else a stack array filled in the preheader;
// the loop reads element iv (§IV.E).
func (cg *codegen) genMismatch(n *Node) ir.Value {
	t := n.Vals[0].Type()
	allConstScalar := true
	for _, v := range n.Vals {
		switch v.(type) {
		case *ir.IntConst, *ir.FloatConst:
		default:
			allConstScalar = false
		}
	}
	if allConstScalar {
		arr := &ir.ArrayConst{Typ: ir.ArrayOf(len(n.Vals), t)}
		for _, v := range n.Vals {
			arr.Elems = append(arr.Elems, v.(ir.Const))
		}
		glob := cg.mod.NewGlobal("roll.cdata", arr.Typ, arr)
		glob.ReadOnly = true
		// When cg.mod is a parallel staging sink rather than the real
		// module, claim the real module as parent immediately: the
		// verifier checks operand ownership against f.Parent, and the
		// sandbox verifies the function before the staged global is
		// adopted. Adoption only renames and re-lists; it restores the
		// same parent. A no-op in the serial pipeline (cg.mod == f.Parent).
		glob.Parent = cg.f.Parent
		p := cg.loop.GEP(glob, ir.ConstInt(ir.I64, 0), cg.iv)
		return cg.loop.Load(p)
	}
	arr := cg.pre.Alloca(ir.ArrayOf(len(n.Vals), t), nil, "roll.vdata")
	for k, v := range n.Vals {
		p := cg.pre.GEP(arr, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, int64(k)))
		cg.pre.Store(v, p)
	}
	p := cg.loop.GEP(arr, ir.ConstInt(ir.I64, 0), cg.iv)
	return cg.loop.Load(p)
}

// genMatch emits the merged instruction for a match node, wiring its
// operands to the children's generated values.
func (cg *codegen) genMatch(n *Node) ir.Value {
	if n.GepCastElem != nil {
		return cg.genGepCast(n)
	}
	clone := &ir.Instr{
		Op:     n.Op,
		Typ:    n.Typ,
		Pred:   n.Pred,
		Callee: n.Callee,
	}
	if !ir.IsVoid(n.Typ) {
		clone.Name = cg.f.UniqueName("roll")
	}
	clone.Operands = make([]ir.Value, len(n.Children))
	for i, c := range n.Children {
		clone.Operands[i] = c.gen
	}
	cg.loop.Block = cg.loopB
	insertBuilderInstr(cg.loop, clone)
	return clone
}

// genGepCast emits a matched gep whose lanes index different fields of a
// homogeneous struct: the struct is reinterpreted as an array of its
// field type and indexed flat, exactly the manual rewrite the paper shows
// in Fig. 4b.
func (cg *codegen) genGepCast(n *Node) ir.Value {
	base := n.Children[0].gen
	elemPtr := ir.Ptr(n.GepCastElem)
	var p ir.Value = base
	if !base.Type().Equal(elemPtr) {
		p = cg.loop.Cast(ir.OpBitcast, base, elemPtr)
	}
	idx := n.Children[len(n.Children)-1].gen
	if it, ok := idx.Type().(ir.IntType); ok && it.Bits < 64 {
		idx = cg.loop.Cast(ir.OpSExt, idx, ir.I64)
	}
	if n.GepPrefixElems != 0 {
		idx = cg.loop.Add(idx, ir.ConstInt(ir.I64, n.GepPrefixElems))
	}
	return cg.loop.GEP(p, idx)
}

// genReduction lowers a reduction tree to an accumulator phi plus a
// single binary operation (§IV.C5), or — for the min/max extension — a
// comparison plus a select.
func (cg *codegen) genReduction(n *Node) ir.Value {
	child := n.Children[0]
	acc := cg.newLoopPhi(n.RedRoot.Typ, "roll.acc")
	if n.MinMaxPred != ir.PredInvalid {
		ir.AddIncoming(acc, n.Init, cg.b)
		cmp := &ir.Instr{
			Op:       n.MinMaxCmp,
			Typ:      ir.I1,
			Pred:     n.MinMaxPred,
			Name:     cg.f.UniqueName("roll.mm"),
			Operands: []ir.Value{child.gen, acc},
		}
		insertBuilderInstr(cg.loop, cmp)
		sel := cg.loop.Select(cmp, child.gen, acc)
		ir.AddIncoming(acc, sel, cg.loopB)
		return sel
	}
	if n.Init != nil {
		ir.AddIncoming(acc, n.Init, cg.b)
	} else {
		ir.AddIncoming(acc, n.RedOp.NeutralElement(n.RedRoot.Typ), cg.b)
	}
	red := cg.loop.Bin(n.RedOp, acc, child.gen)
	ir.AddIncoming(acc, red, cg.loopB)
	return red
}

func insertBuilderInstr(bd *ir.Builder, in *ir.Instr) {
	if bd.At < 0 {
		bd.Block.Append(in)
	} else {
		bd.Block.InsertAt(bd.At, in)
		bd.At++
	}
}

// extractExternalUses handles values computed inside the loop that other
// code still needs (§IV.E): uses of only the final lane read the loop's
// last value directly; otherwise the loop stores every lane into a stack
// array and the exit block reloads the needed elements.
func (cg *codegen) extractExternalUses(users map[ir.Value][]*ir.Instr, sched *Schedule) {
	matched := cg.graph.Matched
	type replacement struct {
		old ir.Value
		new ir.Value
	}
	var reps []replacement
	// Exit-block loads go before the POST instructions, in generation
	// order. Insert immediately (not batched) so name uniqueness checks
	// see them.
	exitPos := 0
	insertExit := func(in *ir.Instr) {
		cg.exitB.InsertAt(exitPos, in)
		exitPos++
	}

	for _, n := range sched.Emission {
		switch n.Kind {
		case KindMatch:
			if ir.IsVoid(n.Typ) {
				continue
			}
			extLanes := make([]int, 0, len(n.Insts))
			for k, in := range n.Insts {
				if in == nil {
					continue
				}
				for _, u := range users[in] {
					if _, isMatched := matched[u]; !isMatched {
						extLanes = append(extLanes, k)
						break
					}
				}
			}
			if len(extLanes) == 0 {
				continue
			}
			if len(extLanes) == 1 && extLanes[0] == cg.lanes-1 {
				// Only the final iteration's value escapes: it is the
				// loop's live-out value, directly available in the exit.
				reps = append(reps, replacement{old: n.Insts[cg.lanes-1], new: n.gen})
				continue
			}
			arr := cg.pre.Alloca(ir.ArrayOf(cg.lanes, n.Typ), nil, "roll.out")
			p := cg.loop.GEP(arr, ir.ConstInt(ir.I64, 0), cg.iv)
			cg.loop.Store(n.gen, p)
			for _, k := range extLanes {
				gp := &ir.Instr{
					Op:       ir.OpGEP,
					Typ:      ir.Ptr(n.Typ),
					Name:     cg.f.UniqueName("roll.extp"),
					Operands: []ir.Value{arr, ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, int64(k))},
				}
				insertExit(gp)
				ld := &ir.Instr{
					Op:       ir.OpLoad,
					Typ:      n.Typ,
					Name:     cg.f.UniqueName("roll.ext"),
					Operands: []ir.Value{gp},
				}
				insertExit(ld)
				reps = append(reps, replacement{old: n.Insts[k], new: ld})
			}
		case KindReduction:
			reps = append(reps, replacement{old: n.RedRoot, new: n.gen})
		}
	}
	// Rewrite uses everywhere outside the matched set.
	for _, ob := range cg.f.Blocks {
		for _, in := range ob.Instrs {
			if _, isMatched := matched[in]; isMatched {
				continue
			}
			for _, r := range reps {
				in.ReplaceUsesOf(r.old, r.new)
			}
		}
	}
}

func blockIndex(f *ir.Func, b *ir.Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}
