package rolag

import (
	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// Schedule is the result of the scheduling analysis (§IV.D): a statically
// verified placement of every instruction in the block.
type Schedule struct {
	// Pre holds the instructions that stay before the rolled loop: the
	// mismatching nodes' lane values, recurrence initial values,
	// loop-invariant inputs, and everything they depend on, in original
	// block order.
	Pre []*ir.Instr
	// Post holds the unmatched instructions placed after the loop, in
	// original block order.
	Post []*ir.Instr
	// Emission is the deterministic code-generation order of the graph's
	// nodes (operands before users).
	Emission []*Node
}

// AnalyzeScheduling verifies that the instructions of the alignment graph
// can be rearranged into loop iterations while preserving the program's
// semantics, and computes where every other instruction of the block must
// be placed. It returns nil when the rearrangement is illegal.
func AnalyzeScheduling(b *ir.Block, g *Graph) (*Schedule, error) {
	idx := make(map[*ir.Instr]int, len(b.Instrs))
	for i, in := range b.Instrs {
		idx[in] = i
	}
	return analyzeSchedulingIdx(b, g, idx)
}

// analyzeSchedulingIdx is AnalyzeScheduling with the block position
// index supplied by the caller (typically a cached
// analysis.FuncInfo.Index, which maps every instruction to its position
// within its own block — for b's instructions that is the position in
// b). The index serves both roles the analysis needs positions for:
// locating conflicts relative to the candidate and verifying the
// reordered memory-operation pairs.
func analyzeSchedulingIdx(b *ir.Block, g *Graph, idx map[*ir.Instr]int) (*Schedule, error) {
	emission := emissionOrder(g)

	// Inputs: unmatched values inside the block that the rolled loop
	// reads (they are materialized before the loop).
	inputSet := make(map[*ir.Instr]bool)
	addInput := func(v ir.Value) {
		if d, ok := v.(*ir.Instr); ok && d.Parent == b {
			inputSet[d] = true
		}
	}
	for _, n := range emission {
		switch n.Kind {
		case KindIdentical, KindMismatch:
			for _, v := range n.Vals {
				addInput(v)
			}
		case KindRecurrence:
			addInput(n.Init)
		case KindReduction:
			if n.Init != nil {
				addInput(n.Init)
			}
		}
	}

	// PRE: inputs plus their transitive in-block dependences. A
	// dependence on a matched instruction is a circular dependence
	// across the loop boundary — prohibited (§IV.D).
	pre := make(map[*ir.Instr]bool)
	var mark func(in *ir.Instr) bool
	mark = func(in *ir.Instr) bool {
		if pre[in] {
			return true
		}
		if _, matched := g.Matched[in]; matched {
			return false
		}
		pre[in] = true
		if in.Op == ir.OpPhi {
			// A phi stays at the block head; its incoming values are not
			// execution dependences (the backedge value is defined later
			// by construction).
			return true
		}
		for _, op := range in.Operands {
			if d, ok := op.(*ir.Instr); ok && d.Parent == b && d.Op != ir.OpPhi {
				if !mark(d) {
					return false
				}
			}
		}
		return true
	}
	for in := range inputSet {
		if !mark(in) {
			return nil, &errAbort{code: "circular-dependence", reason: "circular dependence: a loop input depends on a matched instruction"}
		}
	}

	// Classify every remaining instruction. Instructions that
	// (transitively) depend on a matched instruction must follow the
	// loop; the loop's inputs and their dependences must precede it;
	// everything else is independent (Fig. 13's I-2/I-3/I-5) and keeps
	// its side of the rolled region: independents that originally ran
	// before the first matched instruction stay in front, the rest sink
	// behind — minimizing memory-order disturbance.
	dependsOnMatched := make(map[*ir.Instr]bool)
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi {
			continue
		}
		if _, m := g.Matched[in]; m {
			continue
		}
		for _, op := range in.Operands {
			d, ok := op.(*ir.Instr)
			if !ok || d.Parent != b {
				continue
			}
			if _, m := g.Matched[d]; m || dependsOnMatched[d] {
				dependsOnMatched[in] = true
				break
			}
		}
	}
	firstMatched := len(b.Instrs)
	for i, in := range b.Instrs {
		if _, m := g.Matched[in]; m {
			firstMatched = i
			break
		}
	}
	// For an independent instruction with memory effects, the safe side
	// depends on which matched memory operations it conflicts with: a
	// conflict with a matched op *after* it forbids sinking (→ PRE), a
	// conflict with one *before* it forbids hoisting (→ POST). The final
	// pairwise order check below still vets every decision.
	conflictSides := func(in *ir.Instr) (before, after bool) {
		if !in.HasMemoryEffect() {
			return false, false
		}
		for m := range g.Matched {
			if !m.HasMemoryEffect() {
				continue
			}
			if analysis.Conflict(in, m) {
				if idx[m] < idx[in] {
					before = true
				} else {
					after = true
				}
			}
		}
		return before, after
	}
	for i, in := range b.Instrs {
		if in.Op == ir.OpPhi || in.IsTerminator() {
			continue
		}
		if _, m := g.Matched[in]; m {
			continue
		}
		if pre[in] {
			continue // already forced PRE
		}
		if dependsOnMatched[in] {
			continue // must be POST
		}
		cb, ca := conflictSides(in)
		switch {
		case cb && ca:
			return nil, &errAbort{code: "memory-both-sides", reason: "independent memory operation conflicts with matched code on both sides"}
		case ca:
			pre[in] = true
		case cb:
			// stays POST
		case i < firstMatched:
			pre[in] = true
		}
	}
	// Closure: dependences of PRE instructions must be PRE.
	for changed := true; changed; {
		changed = false
		for _, in := range b.Instrs {
			if !pre[in] || in.Op == ir.OpPhi {
				continue
			}
			for _, op := range in.Operands {
				if d, ok := op.(*ir.Instr); ok && d.Parent == b && d.Op != ir.OpPhi && !pre[d] {
					if _, m := g.Matched[d]; m {
						return nil, &errAbort{code: "circular-dependence", reason: "circular dependence: pre-loop code depends on a matched instruction"}
					}
					pre[d] = true
					changed = true
				}
			}
		}
	}
	var sched Schedule
	sched.Emission = emission
	for _, in := range b.Instrs {
		if in.Op == ir.OpPhi || in.IsTerminator() {
			continue
		}
		if _, matched := g.Matched[in]; matched {
			continue
		}
		if pre[in] {
			sched.Pre = append(sched.Pre, in)
		} else {
			sched.Post = append(sched.Post, in)
		}
	}

	// A POST instruction must not be depended on by a PRE instruction;
	// PRE is dependence-closed, so that cannot happen. But a PRE
	// instruction with memory effects that originally executed *after*
	// memory effects of matched or POST instructions would be hoisted;
	// likewise POST memory ops sink below later iterations' ops, and
	// matched memory ops are reordered iteration-major. Verify every
	// reordered pair of conflicting memory operations (§IV.D).
	var newOrder []*ir.Instr
	for _, in := range sched.Pre {
		if in.HasMemoryEffect() {
			newOrder = append(newOrder, in)
		}
	}
	lanes := g.Root.Lanes()
	for k := 0; k < lanes; k++ {
		for _, n := range emission {
			if n.Kind != KindMatch {
				continue
			}
			in := n.Insts[k]
			if in != nil && in.HasMemoryEffect() {
				newOrder = append(newOrder, in)
			}
		}
	}
	for _, in := range sched.Post {
		if in.HasMemoryEffect() {
			newOrder = append(newOrder, in)
		}
	}
	for i := 0; i < len(newOrder); i++ {
		for j := i + 1; j < len(newOrder); j++ {
			a, c := newOrder[i], newOrder[j]
			// a precedes c in the new order; if c originally preceded a
			// and they conflict, the roll is illegal.
			if idx[c] < idx[a] && analysis.Conflict(a, c) {
				return nil, &errAbort{code: "memory-reorder", reason: "memory operations would be reordered: " + a.String() + " / " + c.String()}
			}
		}
	}
	return &sched, nil
}

// emissionOrder returns the nodes in deterministic post-order (operands
// before users); recurrence back-references are not traversed. Shared
// nodes appear once, at their first (deepest-needed) position.
func emissionOrder(g *Graph) []*Node {
	var order []*Node
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, gr := range n.Groups {
			visit(gr)
		}
		for _, c := range n.Children {
			visit(c)
		}
		order = append(order, n)
	}
	visit(g.Root)
	return order
}
