package rolag_test

import (
	"testing"

	"rolag/internal/interp"
	"rolag/internal/passes"
	"rolag/internal/rolag"
	"rolag/internal/unroll"
	"rolag/internal/workloads/tsvc"
)

// TestMinMaxReductionExtension: the paper's future-work case (Fig. 20b):
// an unrolled max-reduction loop. With the extension enabled the select
// chain rolls; with defaults it does not.
func TestMinMaxReductionExtension(t *testing.T) {
	src := `
int fmax4(const int *a, int m0) {
	int m = m0;
	m = a[0] > m ? a[0] : m;
	m = a[1] > m ? a[1] : m;
	m = a[2] > m ? a[2] : m;
	m = a[3] > m ? a[3] : m;
	m = a[4] > m ? a[4] : m;
	m = a[5] > m ? a[5] : m;
	return m;
}`
	// Defaults: unsupported, like the paper.
	_, _, plain := roll(t, src, nil)
	if plain.LoopsRolled != 0 {
		t.Errorf("defaults rolled %d min/max loops; the paper's technique does not support them", plain.LoopsRolled)
	}
	// Extension: rolls and stays equivalent.
	orig, work, ext := roll(t, src, rolag.Extensions())
	if ext.LoopsRolled != 1 {
		t.Fatalf("extension rolled %d, want 1\n%s", ext.LoopsRolled, work.FindFunc("fmax4"))
	}
	mustEquiv(t, orig, work, "fmax4")
}

// TestMinMaxOnUnrolledTSVC: the s3113-style kernel end to end: rotate,
// if-convert, unroll x8, then roll the select chain back.
func TestMinMaxOnUnrolledTSVC(t *testing.T) {
	kr := tsvc.Find("s314")
	if kr == nil {
		t.Skip("kernel s314 not in suite")
	}
	orig := compile(t, kr.Src)
	work := compile(t, kr.Src)
	for _, f := range work.Funcs {
		passes.IfConvert(f)
		passes.Simplify(f)
		passes.DCE(f)
	}
	for _, f := range work.Funcs {
		unroll.UnrollAll(f, 8)
	}
	passes.Standard().Run(work)
	stats := rolag.RollModule(work, rolag.Extensions())
	passes.Standard().Run(work)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if stats.LoopsRolled == 0 {
		t.Fatalf("expected the unrolled max reduction to roll\n%s", work.FindFunc(kr.Func))
	}
	if err := interp.CheckEquiv(orig, work, kr.Func, 2, &interp.Harness{MaxSteps: 3_000_000}); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}
