package rolag

import (
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the RoLAG pipeline for timing. The
// same timers feed cmd/rolag-bench (per-phase p50/p99) and rolagd's
// rolagd_phase_seconds metrics, so the two always agree on phase
// boundaries.
type Phase int

// Pipeline phases, in execution order.
const (
	PhaseSeed     Phase = iota // seed-group collection and joining
	PhaseAlign                 // alignment-graph construction
	PhaseSchedule              // scheduling analysis
	PhaseCodegen               // loop generation + profitability check
	NumPhases
)

// String returns the phase's metric label.
func (p Phase) String() string {
	switch p {
	case PhaseSeed:
		return "seed"
	case PhaseAlign:
		return "align"
	case PhaseSchedule:
		return "schedule"
	case PhaseCodegen:
		return "codegen"
	}
	return "unknown"
}

// PhaseBounds are the histogram bucket upper bounds, in seconds. An
// implicit +Inf bucket (== Count) follows the last bound.
var PhaseBounds = []float64{100e-9, 1e-6, 10e-6, 100e-6, 1e-3, 10e-3, 100e-3, 1}

const numPhaseBuckets = 8

var phaseBoundNanos = [numPhaseBuckets]int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000}

// PhaseSnapshot is the accumulated timing of one phase.
type PhaseSnapshot struct {
	Count uint64
	Nanos uint64
	// Buckets holds non-cumulative histogram counts per PhaseBounds
	// entry; durations above the last bound count only toward Count.
	Buckets [numPhaseBuckets]uint64
}

type phaseCounters struct {
	count   atomic.Uint64
	nanos   atomic.Uint64
	buckets [numPhaseBuckets]atomic.Uint64
}

var (
	// phaseTimingOn gates all timing with a single atomic load, the
	// same pattern faultpoint uses: a disabled timer costs one branch.
	phaseTimingOn atomic.Bool
	phaseTimes    [NumPhases]phaseCounters
)

// EnablePhaseTiming turns per-phase wall-clock accounting on or off
// process-wide. Disabled (the default), the hot path pays one atomic
// load per phase. Safe for concurrent use.
func EnablePhaseTiming(on bool) { phaseTimingOn.Store(on) }

// PhaseTimingEnabled reports whether phase timing is on.
func PhaseTimingEnabled() bool { return phaseTimingOn.Load() }

// ResetPhaseTimings zeroes the accumulated counters.
func ResetPhaseTimings() {
	for p := range phaseTimes {
		phaseTimes[p].count.Store(0)
		phaseTimes[p].nanos.Store(0)
		for i := range phaseTimes[p].buckets {
			phaseTimes[p].buckets[i].Store(0)
		}
	}
}

// PhaseTimings returns a snapshot of the accumulated per-phase timings.
func PhaseTimings() [NumPhases]PhaseSnapshot {
	var out [NumPhases]PhaseSnapshot
	for p := range phaseTimes {
		out[p].Count = phaseTimes[p].count.Load()
		out[p].Nanos = phaseTimes[p].nanos.Load()
		for i := range phaseTimes[p].buckets {
			out[p].Buckets[i] = phaseTimes[p].buckets[i].Load()
		}
	}
	return out
}

// phaseStart returns the start time when timing is enabled and zero
// otherwise; pair with phaseEnd.
func phaseStart() time.Time {
	if !phaseTimingOn.Load() {
		return time.Time{}
	}
	return time.Now()
}

func phaseEnd(p Phase, start time.Time) {
	if start.IsZero() {
		return
	}
	d := time.Since(start).Nanoseconds()
	c := &phaseTimes[p]
	c.count.Add(1)
	c.nanos.Add(uint64(d))
	for i, bound := range phaseBoundNanos {
		if d <= bound {
			c.buckets[i].Add(1)
			break
		}
	}
}
