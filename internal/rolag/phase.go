package rolag

import (
	"time"

	"rolag/internal/obs"
)

// Phase identifies one stage of the RoLAG pipeline for timing. Each
// phase is a registered obs span class, so the same histograms feed
// cmd/rolag-bench (per-phase p50/p99), rolagd's rolagd_phase_seconds
// metrics, and — when tracing is on — per-request trace events; every
// consumer agrees on phase boundaries by construction. Enable/reset/
// snapshot live in internal/obs (EnableSpanStats, ResetSpanStats,
// SpanStats); the accounting is safe under the parallel pipeline
// because the obs counters are plain atomics.
type Phase int

// Pipeline phases, in execution order.
const (
	PhaseSeed     Phase = iota // seed-group collection and joining
	PhaseAlign                 // alignment-graph construction
	PhaseSchedule              // scheduling analysis
	PhaseCodegen               // loop generation + profitability check
	NumPhases
)

// String returns the phase's metric label.
func (p Phase) String() string {
	switch p {
	case PhaseSeed:
		return "seed"
	case PhaseAlign:
		return "align"
	case PhaseSchedule:
		return "schedule"
	case PhaseCodegen:
		return "codegen"
	}
	return "unknown"
}

// phaseClasses registers the phases with obs at init time, in phase
// order, so obs.SpanStats() lists them seed/align/schedule/codegen.
var phaseClasses = func() [NumPhases]obs.SpanClass {
	var cs [NumPhases]obs.SpanClass
	for p := PhaseSeed; p < NumPhases; p++ {
		cs[p] = obs.RegisterSpanClass(p.String())
	}
	return cs
}()

// phaseStart returns the start time when span stats or tracing are
// enabled and zero otherwise; pair with phaseEnd. Disabled, the pair
// costs one atomic load each.
func phaseStart() time.Time { return obs.Now() }

func phaseEnd(rec *obs.Recorder, p Phase, start time.Time) {
	phaseClasses[p].End(rec.TraceCtx(), start)
}
