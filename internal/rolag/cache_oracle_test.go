package rolag_test

// Differential oracle for the analysis cache: RoLAG running on a
// caching analysis.Manager must produce byte-identical IR to RoLAG on
// an uncached manager (which recomputes every analysis at every
// request). Any divergence means a stale-analysis bug — an invalidation
// missing after a body rewrite. Driven by fuzzgen's generator so the
// inputs cover the same shape space the differential fuzzer explores.

import (
	"testing"

	"rolag/internal/analysis"
	"rolag/internal/cc"
	"rolag/internal/fuzzgen"
	"rolag/internal/ir"
	"rolag/internal/passes"
	rl "rolag/internal/rolag"
)

func TestCachedAnalysesMatchUncachedFuzz(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	rolled := 0
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := fuzzgen.Generate(seed, 48)

		compile := func() *ir.Module {
			m, err := cc.Compile(src, "m")
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			passes.Standard().Run(m)
			return m
		}
		cached := compile()
		uncached := compile()
		if cached.String() != uncached.String() {
			t.Fatalf("seed %d: canonicalization is nondeterministic", seed)
		}

		cam := analysis.NewManager()
		uam := analysis.NewUncachedManager()
		var cRolled, uRolled int
		for _, f := range cached.Funcs {
			cRolled += rl.RollFuncInto(f, nil, cam, cached, nil).LoopsRolled
		}
		for _, f := range uncached.Funcs {
			uRolled += rl.RollFuncInto(f, nil, uam, uncached, nil).LoopsRolled
		}
		if cRolled != uRolled {
			t.Errorf("seed %d: cached rolled %d loops, uncached %d", seed, cRolled, uRolled)
		}
		if got, want := cached.String(), uncached.String(); got != want {
			t.Errorf("seed %d: cached pipeline diverges from uncached\n--- cached ---\n%s\n--- uncached ---\n%s",
				seed, got, want)
		}
		rolled += cRolled
	}
	if rolled == 0 {
		t.Error("no generated input rolled anything; the oracle exercised nothing")
	}
}
