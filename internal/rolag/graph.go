package rolag

import (
	"fmt"
	"strings"

	"rolag/internal/analysis"
	"rolag/internal/ir"
)

// Node is one node of the alignment graph. A node groups one value per
// lane (= loop iteration). Virtual lanes (possible in match nodes built
// through the neutral-element identities) have a nil entry in Insts.
type Node struct {
	Kind NodeKind
	// Vals holds the lane values. For match nodes built through neutral
	// identities some entries may be nil (the lane's value is
	// represented by the node's children alone).
	Vals []ir.Value
	// Insts holds the lane instructions of match nodes (nil entries for
	// virtual lanes).
	Insts []*ir.Instr
	// Children are the operand nodes of a match node (one per operand
	// position), the leaf-group node of a reduction, or empty.
	Children []*Node

	// Match-node instruction template fields.
	Op     ir.Op
	Typ    ir.Type
	Pred   ir.Pred
	Callee *ir.Func

	// IntSeq fields: lane k has value Start + k*Step.
	Start, Step int64
	SeqTyp      ir.IntType

	// Recurrence fields: lane 0 reads Init; lane k reads RefParent's
	// lane k-1 value.
	Init      ir.Value
	RefParent *Node

	// Reduction fields.
	RedOp       ir.Op
	RedRoot     *ir.Instr
	RedInternal []*ir.Instr
	// Min/max reduction fields (extension): the per-link comparison.
	MinMaxPred ir.Pred
	MinMaxCmp  ir.Op

	// Joint: the seed-group subgraphs in loop-body order.
	Groups []*Node

	// Gep-over-struct rewrite (the paper's Fig. 4b "treat the struct as
	// an array" trick): when a matched gep indexes different fields of a
	// homogeneous struct per lane, the rolled gep is emitted as
	// bitcast(base, GepCastElem*) indexed by GepPrefixElems + lastIndex.
	GepCastElem    ir.Type
	GepPrefixElems int64

	// gen is the value generated for this node inside the rolled loop
	// (set by codegen).
	gen ir.Value
}

// Lanes returns the number of lanes (loop iterations) of the graph
// containing n.
func (n *Node) Lanes() int {
	if n.Kind == KindJoint {
		return n.Groups[0].Lanes()
	}
	if n.Kind == KindReduction {
		return n.Children[0].Lanes()
	}
	return len(n.Vals)
}

// Graph is a complete alignment graph for one seed group (or joint seed
// groups) of a basic block.
type Graph struct {
	Root  *Node
	Block *ir.Block
	// Nodes lists every node, in creation (bottom-up discovery) order.
	Nodes []*Node
	// Matched maps every instruction claimed by a match/reduction node
	// to its lane (reduction internals use lane -1).
	Matched map[*ir.Instr]int
}

// NodeCounts tallies the node kinds in the graph (Fig. 16 / Fig. 19).
func (g *Graph) NodeCounts() map[NodeKind]int {
	m := make(map[NodeKind]int, 4)
	g.AddNodeCounts(m)
	return m
}

// AddNodeCounts accumulates the graph's node-kind tallies into dst, so
// callers aggregating many graphs (the stats collector, rolagd's
// per-request counts) reuse one map instead of allocating per graph.
func (g *Graph) AddNodeCounts(dst map[NodeKind]int) {
	for _, n := range g.Nodes {
		dst[n.Kind]++
	}
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	seen := make(map[*Node]bool)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&sb, "%s- %s", strings.Repeat("  ", depth), n.Kind)
		switch n.Kind {
		case KindIntSeq:
			fmt.Fprintf(&sb, " %d..%d,%d", n.Start, n.Start+int64(len(n.Vals)-1)*n.Step, n.Step)
		case KindMatch:
			fmt.Fprintf(&sb, " %s", n.Op)
			if n.Callee != nil {
				fmt.Fprintf(&sb, " @%s", n.Callee.Name)
			}
		case KindIdentical:
			fmt.Fprintf(&sb, " %s", n.Vals[0].Ident())
		case KindReduction:
			fmt.Fprintf(&sb, " %s", n.RedOp)
		}
		if seen[n] {
			sb.WriteString(" (shared)\n")
			return
		}
		seen[n] = true
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
		for _, gr := range n.Groups {
			walk(gr, depth+1)
		}
		if n.RefParent != nil {
			fmt.Fprintf(&sb, "%s  (cycles to %s)\n", strings.Repeat("  ", depth), n.RefParent.Op)
		}
	}
	walk(g.Root, 0)
	return sb.String()
}

// errAbort is an internal sentinel: the candidate cannot be aligned.
// errAbort is the internal "this attempt cannot roll" sentinel. code
// is a stable machine-readable slug (the remark Reason field and the
// experiments' rejected-by-reason tables key on it); reason is the
// human-readable explanation.
type errAbort struct {
	code   string
	reason string
}

func (e *errAbort) Error() string { return "rolag: " + e.reason }

type laneRef struct {
	node *Node
	lane int
}

// graphBuilder constructs an alignment graph bottom-up.
type graphBuilder struct {
	opts    *Options
	block   *ir.Block
	inBlock map[*ir.Instr]bool
	memo    map[string]*Node
	claimed map[*ir.Instr]laneRef
	nodes   []*Node
	// intern assigns the dense value ids behind memoization keys; it is
	// shared across all graph builds of a function (via the analysis
	// cache) so ids — and their map entries — are reused.
	intern *analysis.Interner
	// keyBuf is the scratch buffer groupKey encodes into; reused across
	// calls, so steady-state key construction allocates only the final
	// string.
	keyBuf []byte
}

func newGraphBuilder(opts *Options, b *ir.Block, intern *analysis.Interner) *graphBuilder {
	gb := &graphBuilder{
		opts:    opts,
		block:   b,
		inBlock: make(map[*ir.Instr]bool, len(b.Instrs)),
		memo:    make(map[string]*Node),
		claimed: make(map[*ir.Instr]laneRef),
		intern:  intern,
	}
	for _, in := range b.Instrs {
		gb.inBlock[in] = true
	}
	return gb
}

func (gb *graphBuilder) addNode(n *Node) *Node {
	gb.nodes = append(gb.nodes, n)
	return n
}

// groupKey identifies a lane group for memoization. Instructions and
// other named values key by identity; constants key by type and value so
// that structurally equal constant groups (e.g. the index sequence 0..n
// appearing under several parents) share one node. The key is the
// hash-consed id sequence of the lanes — four bytes per lane — rather
// than a formatted string.
func (gb *graphBuilder) groupKey(vals []ir.Value) string {
	gb.keyBuf = gb.intern.AppendKey(gb.keyBuf[:0], vals)
	return string(gb.keyBuf)
}

// build classifies a lane group and returns its node. parent is the
// match node whose operands the group holds (used for recurrence
// detection); it may be nil.
func (gb *graphBuilder) build(vals []ir.Value, parent *Node) (*Node, error) {
	// Identical values across all lanes: loop-invariant.
	allSame := true
	for _, v := range vals[1:] {
		if !ir.SameValue(vals[0], v) {
			allSame = false
			break
		}
	}
	if allSame {
		return gb.addNode(&Node{Kind: KindIdentical, Vals: append([]ir.Value(nil), vals...)}), nil
	}

	// Recurrence: lane k is some already-aligned node's lane k-1 value
	// (§IV.C4). The chained dependence usually references the parent
	// match node directly (Fig. 10), but conversions or sibling operands
	// can put the chain one or more nodes away, so every match node
	// discovered so far is a candidate. Checked before memoization
	// because the result depends on graph context.
	if gb.opts.EnableRecurrence {
		var cands []*Node
		if parent != nil && parent.Kind == KindMatch {
			cands = append(cands, parent)
		}
		for i := len(gb.nodes) - 1; i >= 0; i-- {
			if n := gb.nodes[i]; n.Kind == KindMatch && n != parent {
				cands = append(cands, n)
			}
		}
		for _, ref := range cands {
			if n := gb.tryRecurrence(vals, ref); n != nil {
				return n, nil
			}
		}
	}

	key := gb.groupKey(vals)
	if n, ok := gb.memo[key]; ok {
		return n, nil
	}
	n, err := gb.classify(vals)
	if err != nil {
		return nil, err
	}
	gb.memo[key] = n
	return n, nil
}

// tryRecurrence checks whether vals form a chained dependence on ref:
// lane k reads ref's lane k-1 value, and lane 0 reads an initial value of
// the same type.
func (gb *graphBuilder) tryRecurrence(vals []ir.Value, ref *Node) *Node {
	if len(ref.Insts) != len(vals) {
		return nil
	}
	for k := 1; k < len(vals); k++ {
		if ref.Insts[k-1] == nil || vals[k] != ir.Value(ref.Insts[k-1]) {
			return nil
		}
	}
	init := vals[0]
	if !init.Type().Equal(ref.Typ) {
		return nil
	}
	if d, ok := init.(*ir.Instr); ok {
		if d == ref.Insts[len(vals)-1] {
			return nil // degenerate self-cycle
		}
	}
	return gb.addNode(&Node{
		Kind:      KindRecurrence,
		Vals:      append([]ir.Value(nil), vals...),
		Init:      init,
		RefParent: ref,
	})
}

func (gb *graphBuilder) classify(vals []ir.Value) (*Node, error) {
	// Monotonic integer sequences (§IV.C1).
	if node := gb.tryIntSeq(vals); node != nil {
		return node, nil
	}
	// Isomorphic instructions.
	if node, err := gb.tryMatch(vals); node != nil || err != nil {
		return node, err
	}
	// Neutral pointer operations (§IV.C2).
	if gb.opts.EnableNeutralPtr {
		if node, err := gb.tryNeutralGep(vals); node != nil || err != nil {
			return node, err
		}
	}
	// Neutral elements of binary operations (§IV.C3).
	if gb.opts.EnableNeutralBinOp {
		if node, err := gb.tryNeutralBinOp(vals); node != nil || err != nil {
			return node, err
		}
	}
	return gb.mismatch(vals)
}

// tryIntSeq recognizes S0..Sn,step sequences of integer constants. It
// validates the lanes in one pass without an intermediate constant
// slice — this runs on every unmemoized leaf group, so the only
// allocation on the hit path is the node's own lane copy.
func (gb *graphBuilder) tryIntSeq(vals []ir.Value) *Node {
	if !gb.opts.EnableIntSeq || len(vals) < 2 {
		return nil
	}
	c0, ok := vals[0].(*ir.IntConst)
	if !ok {
		return nil
	}
	c1, ok := vals[1].(*ir.IntConst)
	if !ok {
		return nil
	}
	typ := c0.Typ
	step := c1.Val - c0.Val
	if step == 0 {
		return nil // identical would have caught equal lanes
	}
	prev := c0.Val
	for _, v := range vals[1:] {
		c, ok := v.(*ir.IntConst)
		if !ok || c.Typ != typ || c.Val-prev != step {
			return nil
		}
		prev = c.Val
	}
	return gb.addNode(&Node{
		Kind:   KindIntSeq,
		Vals:   append([]ir.Value(nil), vals...),
		Start:  c0.Val,
		Step:   step,
		SeqTyp: typ,
	})
}

// tryMatch builds a match node when all lanes are distinct isomorphic
// instructions from the seed block.
func (gb *graphBuilder) tryMatch(vals []ir.Value) (*Node, error) {
	insts := make([]*ir.Instr, len(vals))
	seen := make(map[*ir.Instr]bool, len(vals))
	for i, v := range vals {
		in, ok := v.(*ir.Instr)
		if !ok || !gb.inBlock[in] || seen[in] {
			return nil, nil
		}
		if in.Op == ir.OpPhi || in.Op == ir.OpAlloca || in.IsTerminator() {
			return nil, nil
		}
		seen[in] = true
		insts[i] = in
	}
	t := insts[0]
	for _, in := range insts[1:] {
		if in.Op != t.Op || !in.Typ.Equal(t.Typ) || in.Pred != t.Pred ||
			in.Callee != t.Callee || len(in.Operands) != len(t.Operands) {
			return nil, nil
		}
		for oi := range t.Operands {
			if !in.Operand(oi).Type().Equal(t.Operand(oi).Type()) {
				return nil, nil
			}
		}
	}
	if t.Op == ir.OpGEP {
		if _, _, _, ok := gepPlan(insts); !ok {
			return nil, nil
		}
	}
	return gb.makeMatch(insts)
}

// gepPlan decides how a group of isomorphic geps can be merged. If no
// struct-field index varies across lanes the geps merge directly. A
// varying struct index is only mergeable when it is the final index, all
// earlier indices are identical constants, and the indexed fields form a
// homogeneous run (equal types at offsets linear in the index) — then the
// merged gep is emitted through a bitcast with a flat element index
// (needCast true).
func gepPlan(insts []*ir.Instr) (needCast bool, elem ir.Type, prefixElems int64, ok bool) {
	t := insts[0]
	pt := t.Operand(0).Type().(ir.PointerType)
	cur := ir.Type(pt.Elem)
	prefixBytes := int64(0)
	prefixStatic := true
	numIdx := len(t.Operands) - 1
	for pos := 1; pos <= numIdx; pos++ {
		varying := false
		c0, isConst := ir.IntValue(t.Operand(pos))
		for _, in := range insts[1:] {
			if !ir.SameValue(in.Operand(pos), t.Operand(pos)) {
				varying = true
			}
		}
		st, isStruct := cur.(*ir.StructType)
		if pos == 1 {
			// The leading index steps whole pointees.
			if varying || !isConst {
				prefixStatic = false
			} else {
				prefixBytes += c0 * int64(cur.Size())
			}
			continue
		}
		switch {
		case isStruct && !varying:
			prefixBytes += int64(st.FieldOffset(int(c0)))
			cur = st.Fields[c0]
		case isStruct && varying:
			if pos != numIdx || !prefixStatic {
				return false, nil, 0, false
			}
			// Homogeneity over the lanes' field indices.
			var ft ir.Type
			for _, in := range insts {
				f, isC := ir.IntValue(in.Operand(pos))
				if !isC || int(f) >= len(st.Fields) {
					return false, nil, 0, false
				}
				if ft == nil {
					ft = st.Fields[f]
				} else if !st.Fields[f].Equal(ft) {
					return false, nil, 0, false
				}
				if int64(st.FieldOffset(int(f))) != f*int64(ft.Size()) {
					return false, nil, 0, false
				}
			}
			if ft.Size() == 0 || prefixBytes%int64(ft.Size()) != 0 {
				return false, nil, 0, false
			}
			return true, ft, prefixBytes / int64(ft.Size()), true
		default:
			at, isArr := cur.(ir.ArrayType)
			if !isArr {
				return false, nil, 0, false
			}
			if varying || !isConst {
				prefixStatic = false
			} else {
				prefixBytes += c0 * int64(at.Elem.Size())
			}
			cur = at.Elem
		}
	}
	return false, nil, 0, true
}

// claim records node n as the owner of each lane instruction. A pure
// (memory-effect-free) instruction may be claimed by several nodes at
// different lanes — each node regenerates its own copy inside the loop —
// but instructions with memory effects must have a single owner, since
// duplicating them would change the program's memory behaviour.
func (gb *graphBuilder) claim(n *Node, insts []*ir.Instr) error {
	for lane, in := range insts {
		if in == nil {
			continue
		}
		if prev, ok := gb.claimed[in]; ok {
			if in.HasMemoryEffect() || in.Op == ir.OpCall {
				return &errAbort{code: "side-effect-claimed-twice", reason: fmt.Sprintf("instruction %%%s with side effects claimed by two nodes (lanes %d and %d)", in.Name, prev.lane, lane)}
			}
			continue // shared pure instruction; first claim stands
		}
		gb.claimed[in] = laneRef{node: n, lane: lane}
	}
	return nil
}

// makeMatch claims the lanes, creates the node and recurses into the
// operand groups.
func (gb *graphBuilder) makeMatch(insts []*ir.Instr) (*Node, error) {
	n := &Node{
		Kind:   KindMatch,
		Vals:   make([]ir.Value, len(insts)),
		Insts:  append([]*ir.Instr(nil), insts...),
		Op:     insts[0].Op,
		Typ:    insts[0].Typ,
		Pred:   insts[0].Pred,
		Callee: insts[0].Callee,
	}
	if n.Op == ir.OpGEP {
		needCast, elem, prefix, ok := gepPlan(insts)
		if !ok {
			return nil, nil
		}
		if needCast {
			n.GepCastElem = elem
			n.GepPrefixElems = prefix
		}
	}
	for i, in := range insts {
		n.Vals[i] = in
	}
	if err := gb.claim(n, insts); err != nil {
		return nil, err
	}
	gb.addNode(n)
	// One backing array for all operand groups; each group is a view.
	// The views stay alive only through node Vals copies, so the shared
	// backing is safe.
	numOps := len(insts[0].Operands)
	lanes := len(insts)
	flat := make([]ir.Value, numOps*lanes)
	groups := make([][]ir.Value, numOps)
	for oi := 0; oi < numOps; oi++ {
		g := flat[oi*lanes : (oi+1)*lanes : (oi+1)*lanes]
		for k, in := range insts {
			g[k] = in.Operand(oi)
		}
		groups[oi] = g
	}
	if gb.opts.EnableCommutative && insts[0].Op.IsCommutative() && numOps == 2 {
		reorderCommutative(groups[0], groups[1])
	}
	for oi := 0; oi < numOps; oi++ {
		child, err := gb.build(groups[oi], n)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

// reorderCommutative swaps operand pairs lane-by-lane so each lane best
// resembles lane 0's orientation, uncovering more profitable alignments
// for commutative operations (§IV.C3).
func reorderCommutative(lhs, rhs []ir.Value) {
	refL, refR := lhs[0], rhs[0]
	for k := 1; k < len(lhs); k++ {
		straight := similarity(refL, lhs[k]) + similarity(refR, rhs[k])
		swapped := similarity(refL, rhs[k]) + similarity(refR, lhs[k])
		if swapped > straight {
			lhs[k], rhs[k] = rhs[k], lhs[k]
		}
	}
}

// similarity scores how alignable two values are.
func similarity(a, b ir.Value) int {
	if ir.SameValue(a, b) {
		return 4
	}
	ai, aok := a.(*ir.Instr)
	bi, bok := b.(*ir.Instr)
	if aok && bok {
		if ai.Op == bi.Op && ai.Typ.Equal(bi.Typ) {
			return 3
		}
		return 1
	}
	if ir.IsConst(a) && ir.IsConst(b) {
		return 2
	}
	if aok != bok {
		return 0
	}
	return 1
}

// tryNeutralGep exploits gep(p, 0) == p: if every lane is either a
// single-index gep off the same base pointer or the base pointer itself,
// the plain lanes are treated as virtual zero-offset geps (§IV.C2).
//
// Geps defined outside the seed block (typically hoisted by LICM) also
// participate: being pure and rematerializable they become virtual lanes
// — the merged gep is regenerated inside the loop and the originals are
// left untouched (dead-code elimination reclaims them if unused).
func (gb *graphBuilder) tryNeutralGep(vals []ir.Value) (*Node, error) {
	var base ir.Value
	var idxType ir.Type
	var resType ir.Type
	anyGep := false
	for _, v := range vals {
		if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpGEP && len(in.Operands) == 2 {
			anyGep = true
			if base == nil {
				base = in.Operand(0)
				idxType = in.Operand(1).Type()
				resType = in.Typ
			} else if in.Operand(0) != base || !in.Operand(1).Type().Equal(idxType) || !in.Typ.Equal(resType) {
				return nil, nil
			}
		}
	}
	if !anyGep || base == nil {
		return nil, nil
	}
	// Every non-gep lane must equal the base pointer, and the gep result
	// type must equal the base type (true for single-index geps over
	// scalars).
	if !base.Type().Equal(resType) {
		return nil, nil
	}
	insts := make([]*ir.Instr, len(vals))
	idxGroup := make([]ir.Value, len(vals))
	seen := make(map[*ir.Instr]bool)
	for k, v := range vals {
		if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpGEP && len(in.Operands) == 2 && in.Operand(0) == base {
			if seen[in] {
				return nil, nil
			}
			seen[in] = true
			if gb.inBlock[in] {
				insts[k] = in
			} else {
				// Out-of-block gep: regenerate, do not claim. Its index
				// must be available before the loop, which holds since
				// it dominates the block already.
				insts[k] = nil
			}
			idxGroup[k] = in.Operand(1)
			continue
		}
		if v != base {
			return nil, nil
		}
		insts[k] = nil
		idxGroup[k] = ir.ZeroValue(idxType)
	}
	n := &Node{
		Kind:  KindMatch,
		Vals:  append([]ir.Value(nil), vals...),
		Insts: insts,
		Op:    ir.OpGEP,
		Typ:   resType,
	}
	if err := gb.claim(n, insts); err != nil {
		return nil, err
	}
	gb.addNode(n)
	baseGroup := make([]ir.Value, len(vals))
	for k := range baseGroup {
		baseGroup[k] = base
	}
	bnode, err := gb.build(baseGroup, n)
	if err != nil {
		return nil, err
	}
	inode, err := gb.build(idxGroup, n)
	if err != nil {
		return nil, err
	}
	n.Children = []*Node{bnode, inode}
	return n, nil
}

// tryNeutralBinOp pads lanes that lack the group's dominant binary
// operation with its neutral element: x is treated as x op e (§IV.C3).
func (gb *graphBuilder) tryNeutralBinOp(vals []ir.Value) (*Node, error) {
	// Find the most frequent binary opcode among lanes that are
	// instructions in the block. Ties are broken by lane order (the op
	// that first reaches the winning count wins) so the choice never
	// depends on map iteration order.
	counts := make(map[ir.Op]int)
	var typ ir.Type
	var domOp ir.Op
	best := 0
	for _, v := range vals {
		if typ == nil {
			typ = v.Type()
		} else if !v.Type().Equal(typ) {
			return nil, nil
		}
		if in, ok := v.(*ir.Instr); ok && gb.inBlock[in] && in.Op.IsBinary() {
			counts[in.Op]++
			if counts[in.Op] > best {
				domOp, best = in.Op, counts[in.Op]
			}
		}
	}
	if best == 0 || best == len(vals) || best < len(vals)/2 {
		return nil, nil
	}
	neutral := domOp.NeutralElement(typ)
	if neutral == nil {
		return nil, nil
	}
	if domOp.IsFloatBinary() && !gb.opts.FastMath {
		// x op 0.0 is not an identity for every float x (e.g. -0.0, NaN
		// payloads) unless fast-math is on.
		return nil, nil
	}
	insts := make([]*ir.Instr, len(vals))
	lhs := make([]ir.Value, len(vals))
	rhs := make([]ir.Value, len(vals))
	seen := make(map[*ir.Instr]bool)
	for k, v := range vals {
		if in, ok := v.(*ir.Instr); ok && gb.inBlock[in] && in.Op == domOp {
			if seen[in] {
				return nil, nil
			}
			seen[in] = true
			insts[k] = in
			lhs[k], rhs[k] = in.Operand(0), in.Operand(1)
			continue
		}
		insts[k] = nil
		lhs[k], rhs[k] = v, neutral
	}
	n := &Node{
		Kind:  KindMatch,
		Vals:  append([]ir.Value(nil), vals...),
		Insts: insts,
		Op:    domOp,
		Typ:   typ,
	}
	if err := gb.claim(n, insts); err != nil {
		return nil, err
	}
	gb.addNode(n)
	if gb.opts.EnableCommutative && domOp.IsCommutative() {
		reorderCommutative(lhs, rhs)
	}
	lnode, err := gb.build(lhs, n)
	if err != nil {
		return nil, err
	}
	rnode, err := gb.build(rhs, n)
	if err != nil {
		return nil, err
	}
	n.Children = []*Node{lnode, rnode}
	return n, nil
}

// mismatch builds a mismatching node, verifying that the lanes share a
// scalar type so they can live in an array.
func (gb *graphBuilder) mismatch(vals []ir.Value) (*Node, error) {
	if !gb.opts.EnableMismatch {
		return nil, &errAbort{code: "mismatch-disabled", reason: "mismatching node with mismatch handling disabled"}
	}
	t := vals[0].Type()
	for _, v := range vals[1:] {
		if !v.Type().Equal(t) {
			return nil, &errAbort{code: "mismatch-type", reason: "mismatching lanes with different types"}
		}
	}
	switch t.(type) {
	case ir.IntType, ir.FloatType, ir.PointerType:
	default:
		return nil, &errAbort{code: "mismatch-nonscalar", reason: "mismatching lanes of non-scalar type"}
	}
	return gb.addNode(&Node{Kind: KindMismatch, Vals: append([]ir.Value(nil), vals...)}), nil
}
