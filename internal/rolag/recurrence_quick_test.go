package rolag_test

import (
	"testing"

	"rolag/internal/interp"
	"rolag/internal/rolag"
)

// Fig. 4 of the paper: a chain of calls where each result feeds the next,
// reading consecutive struct fields in reverse.
const hdmiSrc = `
extern int hdmi_read_reg(int *base, int cfg) pure;
extern int FLD_MOD(int r, int v, int hi, int lo) pure;
struct hdmi_audio_format {
	int sample_size; int samples_word; int sample_order;
	int justification; int type; int en_sig_blk;
};
int config_format(int *base, struct hdmi_audio_format *fmt) {
	int r = hdmi_read_reg(base, 5);
	r = FLD_MOD(r, fmt->en_sig_blk,    5, 5);
	r = FLD_MOD(r, fmt->type,          4, 4);
	r = FLD_MOD(r, fmt->justification, 3, 3);
	r = FLD_MOD(r, fmt->sample_order,  2, 2);
	r = FLD_MOD(r, fmt->samples_word,  1, 1);
	r = FLD_MOD(r, fmt->sample_size,   0, 0);
	return r;
}
`

func TestRollHdmiChain(t *testing.T) {
	orig := compile(t, hdmiSrc)
	work := compile(t, hdmiSrc)
	stats := rolag.RollModule(work, nil)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	t.Logf("stats: %+v", stats)
	t.Log("\n" + work.FindFunc("config_format").String())
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d loops, want 1", stats.LoopsRolled)
	}
	if stats.NodeCounts[rolag.KindRecurrence] == 0 {
		t.Errorf("expected a recurrence node, got %+v", stats.NodeCounts)
	}
	if err := interp.CheckEquiv(orig, work, "config_format", 4, nil); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}
