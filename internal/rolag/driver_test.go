package rolag_test

// Driver-level edge cases: rollback of unprofitable attempts, retry with
// later seed groups, module-global hygiene, and repeated rolling.

import (
	"strings"
	"testing"

	"rolag/internal/interp"
	"rolag/internal/rolag"
)

// TestUnprofitableRollbackRestoresExactly: a rejected roll must leave the
// function text identical to before the attempt and must not leak
// constant-pool globals into the module.
func TestUnprofitableRollbackRestoresExactly(t *testing.T) {
	// Two stores: always unprofitable (verified by TestProfitabilityGate).
	src := `void f(long *a) { a[0] = 1009; a[1] = 5023; }`
	work := compile(t, src)
	before := work.String()
	nGlobals := len(work.Globals)
	stats := rolag.RollModule(work, nil)
	if stats.LoopsRolled != 0 {
		t.Fatalf("expected rejection, rolled %d", stats.LoopsRolled)
	}
	if got := work.String(); got != before {
		t.Errorf("rollback altered the module:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
	if len(work.Globals) != nGlobals {
		t.Errorf("rollback leaked %d globals", len(work.Globals)-nGlobals)
	}
}

// TestSecondGroupRollsAfterFirstFails: when the biggest seed group is
// rejected, the driver must fall through to smaller groups rather than
// give up on the block.
func TestSecondGroupRollsAfterFirstFails(t *testing.T) {
	// Group 1 (8 stores to `a` with irregular dynamic values through a
	// may-aliasing pointer pattern that blocks scheduling) precedes
	// group 2 (6 clean stores to `b`).
	src := `
void f(int *a, int *b, int v, int w, int x, int y) {
	a[1] = a[0] + v;
	a[0] = a[1] + w;
	a[3] = a[2] + x;
	a[2] = a[3] + y;
	b[0] = v; b[1] = v; b[2] = v; b[3] = v; b[4] = v; b[5] = v;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled < 1 {
		t.Fatalf("no group rolled:\n%s", work.FindFunc("f"))
	}
	// The rolled loop must be over b (the clean group).
	text := work.FindFunc("f").String()
	if !strings.Contains(text, "roll.loop") {
		t.Fatalf("no rolled loop:\n%s", text)
	}
	mustEquiv(t, orig, work, "f")
}

// TestBothHalvesOfSplitBlockRoll: rolling one group splits the block;
// seeds left in the preheader and the exit must still be found.
func TestBothHalvesOfSplitBlockRoll(t *testing.T) {
	src := `
extern void sink(int x);
void f(int *a, int v) {
	sink(v); sink(v + 5); sink(v + 10); sink(v + 15); sink(v + 20); sink(v + 25);
	a[0] = v * 2; a[1] = v * 4; a[2] = v * 6; a[3] = v * 8; a[4] = v * 10; a[5] = v * 12;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 2 {
		t.Fatalf("rolled %d loops, want 2 (calls + stores):\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

// TestRollModuleMultipleFunctions: statistics accumulate across
// functions and each function is transformed independently.
func TestRollModuleMultipleFunctions(t *testing.T) {
	src := `
void f1(int *a) { a[0] = 2; a[1] = 4; a[2] = 6; a[3] = 8; a[4] = 10; a[5] = 12; }
void f2(int *a, int v) { a[0] = v; a[1] = v; a[2] = v; a[3] = v; a[4] = v; a[5] = v; }
int f3(int x) { return x * 2; }
`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 2 {
		t.Errorf("rolled %d loops, want 2", stats.LoopsRolled)
	}
	for _, fn := range []string{"f1", "f2", "f3"} {
		mustEquiv(t, orig, work, fn)
	}
}

// TestIdempotentReRoll: running RoLAG twice must not undo, re-roll or
// corrupt anything (the second run sees loops, not straight-line code).
func TestIdempotentReRoll(t *testing.T) {
	src := `void f(int *a) { a[0]=1; a[1]=3; a[2]=5; a[3]=7; a[4]=9; a[5]=11; a[6]=13; a[7]=15; }`
	orig := compile(t, src)
	work := compile(t, src)
	s1 := rolag.RollModule(work, nil)
	if s1.LoopsRolled != 1 {
		t.Fatalf("first run rolled %d", s1.LoopsRolled)
	}
	after1 := work.String()
	s2 := rolag.RollModule(work, nil)
	if s2.LoopsRolled != 0 {
		t.Errorf("second run rolled %d more loops", s2.LoopsRolled)
	}
	if work.String() != after1 {
		t.Error("second run mutated the module")
	}
	mustEquiv(t, orig, work, "f")
}

// TestMinLanesOption: raising MinLanes suppresses small groups.
func TestMinLanesOption(t *testing.T) {
	src := `void f(int *a, int v) { a[0]=v; a[1]=v; a[2]=v; a[3]=v; }`
	opts := rolag.DefaultOptions()
	opts.MinLanes = 6
	_, _, stats := roll(t, src, opts)
	if stats.SeedGroups != 0 || stats.LoopsRolled != 0 {
		t.Errorf("MinLanes=6 should suppress a 4-lane group: %+v", stats)
	}
}

// TestEmptyAndDeclFunctions: degenerate inputs are handled quietly.
func TestEmptyAndDeclFunctions(t *testing.T) {
	src := `
extern int ext(int x);
void empty() { }
int fwd(int x);
int fwd(int x) { return ext(x); }
`
	work := compile(t, src)
	stats := rolag.RollModule(work, nil)
	if stats.LoopsRolled != 0 {
		t.Errorf("nothing should roll: %+v", stats)
	}
	if err := work.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRollPreservesCallOrderAcrossGroups: two call groups with different
// callees interleaved 3-and-3; joint rolling (or refusal) must preserve
// the observable call order exactly.
func TestRollPreservesCallOrderAcrossGroups(t *testing.T) {
	src := `
extern void alpha(int x);
extern void beta(int x);
void f(int v) {
	alpha(v);     beta(v + 100);
	alpha(v + 1); beta(v + 200);
	alpha(v + 2); beta(v + 300);
}`
	orig, work, _ := roll(t, src, nil)
	mustEquiv(t, orig, work, "f")
	h := &interp.Harness{}
	o, err := h.Run(work, "f", 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "alpha", "beta", "alpha", "beta"}
	if len(o.Trace) != len(want) {
		t.Fatalf("trace has %d calls, want %d", len(o.Trace), len(want))
	}
	for i, ev := range o.Trace {
		if ev.Callee != want[i] {
			t.Errorf("call %d: %s, want %s", i, ev.Callee, want[i])
		}
	}
}
