package rolag_test

import (
	"testing"

	"rolag/internal/cc"
	"rolag/internal/costmodel"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/rolag"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := cc.Compile(src, "m")
	if err != nil {
		t.Fatal(err)
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("input verify: %v\n%s", err, m)
	}
	return m
}

// Fig. 3 of the paper: five calls with a strided pointer pattern.
const aegisSrc = `
extern void vst1q_u8(char *p, char *v);
struct aegis_state { char v[80]; };
void save_state(struct aegis_state *st, void *state) {
	vst1q_u8(state     , st->v     );
	vst1q_u8(state + 16, st->v + 16);
	vst1q_u8(state + 32, st->v + 32);
	vst1q_u8(state + 48, st->v + 48);
	vst1q_u8(state + 64, st->v + 64);
}
`

func TestRollAegis(t *testing.T) {
	orig := compile(t, aegisSrc)
	work := compile(t, aegisSrc)
	stats := rolag.RollModule(work, nil)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	t.Logf("stats: %+v", stats)
	t.Log("\n" + work.FindFunc("save_state").String())
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d loops, want 1", stats.LoopsRolled)
	}
	model := costmodel.Default()
	so, sw := model.Module(orig), model.Module(work)
	if sw >= so {
		t.Errorf("rolled size %d >= original %d", sw, so)
	}
	if err := interp.CheckEquiv(orig, work, "save_state", 4, nil); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}

// Fig. 11: reduction tree.
const dotSrc = `
int dot3(const int *a, const int *b) {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] + a[4]*b[4] + a[5]*b[5];
}
`

func TestRollDot(t *testing.T) {
	orig := compile(t, dotSrc)
	work := compile(t, dotSrc)
	stats := rolag.RollModule(work, nil)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	t.Logf("stats: %+v", stats)
	t.Log("\n" + work.FindFunc("dot3").String())
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d loops, want 1", stats.LoopsRolled)
	}
	if err := interp.CheckEquiv(orig, work, "dot3", 4, nil); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}

// Plain store sequence.
const storeSrc = `
void initarr(int *a) {
	a[0] = 10; a[1] = 13; a[2] = 16; a[3] = 19;
	a[4] = 22; a[5] = 25; a[6] = 28; a[7] = 31;
}
`

func TestRollStores(t *testing.T) {
	orig := compile(t, storeSrc)
	work := compile(t, storeSrc)
	stats := rolag.RollModule(work, nil)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, work)
	}
	t.Logf("stats: %+v", stats)
	t.Log("\n" + work.FindFunc("initarr").String())
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d loops, want 1", stats.LoopsRolled)
	}
	if err := interp.CheckEquiv(orig, work, "initarr", 4, nil); err != nil {
		t.Errorf("equivalence: %v", err)
	}
}
