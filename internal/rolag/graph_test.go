package rolag_test

// Alignment-graph structure tests: the shapes of the paper's figures,
// checked node by node.

import (
	"testing"

	"rolag/internal/ir"
	"rolag/internal/rolag"
)

// buildGraphFor compiles src, collects the seed groups of the first
// block containing any, and builds the alignment graph of the first
// group.
func buildGraphFor(t *testing.T, src string, opts *rolag.Options) *rolag.Graph {
	t.Helper()
	if opts == nil {
		opts = rolag.DefaultOptions()
	}
	m := compile(t, src)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			groups := rolag.CollectSeedGroups(b, opts)
			if len(groups) == 0 {
				continue
			}
			g, err := rolag.BuildGraph(b, opts, groups[0])
			if err != nil {
				t.Fatalf("BuildGraph: %v", err)
			}
			return g
		}
	}
	t.Fatal("no seed groups found")
	return nil
}

func kinds(g *rolag.Graph) map[rolag.NodeKind]int { return g.NodeCounts() }

// TestGraphFig7: stores of mismatching constants to consecutive slots —
// the improved graph has a sequence node for the indices and a mismatch
// node for the irregular values (Fig. 7c).
func TestGraphFig7(t *testing.T) {
	src := `
void f(long *ptr) {
	ptr[0] = 5;
	ptr[1] = 1009;
	ptr[2] = 40;
}`
	g := buildGraphFor(t, src, nil)
	k := kinds(g)
	if k[rolag.KindMismatch] != 1 {
		t.Errorf("want 1 mismatch node (values 5,1009,40): %v\n%s", k, g)
	}
	if k[rolag.KindIntSeq] != 1 {
		t.Errorf("want 1 sequence node (indices 0..2,1): %v\n%s", k, g)
	}
	if k[rolag.KindIdentical] != 1 {
		t.Errorf("want 1 identical node (base ptr): %v\n%s", k, g)
	}
	if g.Root.Kind != rolag.KindMatch || g.Root.Op != ir.OpStore {
		t.Errorf("root should be the store match node")
	}
}

// TestGraphFig9: the aegis pattern — neutral pointer operations make the
// raw base pointer a virtual zero-offset gep lane.
func TestGraphFig9(t *testing.T) {
	src := `
extern void vst(char *p, char *q);
void f(char *state, char *v) {
	vst(state     , v     );
	vst(state + 16, v + 16);
	vst(state + 32, v + 32);
}`
	g := buildGraphFor(t, src, nil)
	k := kinds(g)
	if k[rolag.KindMismatch] != 0 {
		t.Errorf("neutral pointer rule should remove all mismatches: %v\n%s", k, g)
	}
	if k[rolag.KindIntSeq] != 1 {
		t.Errorf("want 1 shared sequence node (0..32,16 under both geps): %v\n%s", k, g)
	}
	// The gep match nodes must have a virtual lane 0 (nil instruction).
	virtual := 0
	for _, n := range g.Nodes {
		if n.Kind == rolag.KindMatch && n.Op == ir.OpGEP {
			if len(n.Insts) > 0 && n.Insts[0] == nil {
				virtual++
			}
		}
	}
	if virtual != 2 {
		t.Errorf("want 2 gep nodes with a virtual first lane, got %d\n%s", virtual, g)
	}
}

// TestGraphFig10: the chained-call pattern — a recurrence node cycles
// back to the call match node and the field indices count down.
func TestGraphFig10(t *testing.T) {
	src := `
extern int fld(int r, int v) pure;
struct Fmt { int a; int b; int c; int d; };
int f(int r0, struct Fmt *fmt) {
	int r = fld(r0, fmt->d);
	r = fld(r, fmt->c);
	r = fld(r, fmt->b);
	r = fld(r, fmt->a);
	return r;
}`
	g := buildGraphFor(t, src, nil)
	k := kinds(g)
	if k[rolag.KindRecurrence] != 1 {
		t.Fatalf("want 1 recurrence node: %v\n%s", k, g)
	}
	var rec *rolag.Node
	for _, n := range g.Nodes {
		if n.Kind == rolag.KindRecurrence {
			rec = n
		}
	}
	if rec.RefParent == nil || rec.RefParent.Op != ir.OpCall {
		t.Error("recurrence must cycle back to the call node")
	}
	if rec.Init == nil {
		t.Error("recurrence must carry the initial value (r0 chain head)")
	}
	// The field gep group must include a down-counting sequence.
	foundDown := false
	for _, n := range g.Nodes {
		if n.Kind == rolag.KindIntSeq && n.Step < 0 {
			foundDown = true
		}
	}
	if !foundDown {
		t.Errorf("want a decreasing sequence node (3..0,-1): %v\n%s", k, g)
	}
}

// TestGraphFig11: the dot-product reduction tree becomes a single
// reduction node rooted over the multiply subgraph.
func TestGraphFig11(t *testing.T) {
	src := `
int dot(const int *a, const int *b) {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2];
}`
	g := buildGraphFor(t, src, nil)
	if g.Root.Kind != rolag.KindReduction || g.Root.RedOp != ir.OpAdd {
		t.Fatalf("root should be an add-reduction node\n%s", g)
	}
	child := g.Root.Children[0]
	if child.Kind != rolag.KindMatch || child.Op != ir.OpMul {
		t.Errorf("reduction child should be the mul match node\n%s", g)
	}
	if g.Root.Lanes() != 3 {
		t.Errorf("lanes = %d, want 3", g.Root.Lanes())
	}
}

// TestGraphFig12: alternating store/call groups joined under one node.
func TestGraphFig12(t *testing.T) {
	src := `
extern void callee(int arg);
void f(int *ptr, int arg) {
	ptr[0] = 0;
	callee(arg);
	ptr[1] = 0;
	callee(arg + 1);
}`
	opts := rolag.DefaultOptions()
	m := compile(t, src)
	var g *rolag.Graph
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			groups := rolag.CollectSeedGroups(b, opts)
			if len(groups) < 2 {
				continue
			}
			joined := rolag.TryJoin(b, groups[0], groups)
			if joined == nil {
				t.Fatalf("groups should join (alternating)")
			}
			var err error
			g, err = rolag.BuildGraph(b, opts, joined...)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if g == nil {
		t.Fatal("no graph built")
	}
	if g.Root.Kind != rolag.KindJoint || len(g.Root.Groups) != 2 {
		t.Fatalf("root should be a joint node over 2 groups\n%s", g)
	}
	if g.Root.Groups[0].Op != ir.OpStore || g.Root.Groups[1].Op != ir.OpCall {
		t.Errorf("joint groups must preserve body order (store, call)\n%s", g)
	}
}

// TestTryJoinRejectsNonAlternating: sequential (non-interleaved) groups
// must not join.
func TestTryJoinRejectsNonAlternating(t *testing.T) {
	src := `
extern void callee(int arg);
void f(int *ptr, int arg) {
	ptr[0] = 0;
	ptr[1] = 0;
	callee(arg);
	callee(arg + 1);
}`
	opts := rolag.DefaultOptions()
	m := compile(t, src)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			groups := rolag.CollectSeedGroups(b, opts)
			if len(groups) < 2 {
				continue
			}
			if joined := rolag.TryJoin(b, groups[0], groups); joined != nil {
				t.Errorf("sequential groups must not join")
			}
		}
	}
}

// TestSeedGroupingRules: stores group by (type, base); calls by callee.
func TestSeedGroupingRules(t *testing.T) {
	src := `
extern void ca(int x);
extern void cb(int x);
void f(int *p, long *q, int v) {
	p[0] = v; p[1] = v;         // group 1: i32 stores to p
	q[0] = 1; q[1] = 2;         // group 2: i64 stores to q
	ca(v); ca(v + 1);           // group 3: calls to ca
	cb(v); cb(v + 1);           // group 4: calls to cb
}`
	opts := rolag.DefaultOptions()
	m := compile(t, src)
	found := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			groups := rolag.CollectSeedGroups(b, opts)
			if len(groups) > 0 {
				found = len(groups)
			}
		}
	}
	if found != 4 {
		t.Errorf("found %d seed groups, want 4", found)
	}
}

// TestGraphSharing: a shared subexpression group appears once in the
// graph (memoized), not once per parent.
func TestGraphSharing(t *testing.T) {
	src := `
void f(int *a, int *b, int v) {
	a[0] = b[0] + v;
	a[1] = b[1] + v;
	a[2] = b[2] + v;
}`
	g := buildGraphFor(t, src, nil)
	// The index sequence 0..2 feeds both a's geps and b's geps; the
	// memoized group must appear exactly once.
	seq := 0
	for _, n := range g.Nodes {
		if n.Kind == rolag.KindIntSeq {
			seq++
		}
	}
	if seq != 1 {
		t.Errorf("sequence node should be shared (got %d)\n%s", seq, g)
	}
}
