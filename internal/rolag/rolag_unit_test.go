package rolag_test

import (
	"strings"
	"testing"

	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/rolag"
)

// roll compiles src, runs RoLAG with opts (nil = defaults) and returns
// (original, rolled, stats).
func roll(t *testing.T, src string, opts *rolag.Options) (*ir.Module, *ir.Module, *rolag.Stats) {
	t.Helper()
	orig := compile(t, src)
	work := compile(t, src)
	stats := rolag.RollModule(work, opts)
	if err := work.Verify(); err != nil {
		t.Fatalf("verify after roll: %v\n%s", err, work)
	}
	return orig, work, stats
}

func mustEquiv(t *testing.T, orig, work *ir.Module, fn string) {
	t.Helper()
	if err := interp.CheckEquiv(orig, work, fn, 3, nil); err != nil {
		t.Errorf("@%s: %v\n%s", fn, err, work.FindFunc(fn))
	}
}

func TestSchedulingRejectsOverlappingStores(t *testing.T) {
	// The stores form two groups over the same base in an order the
	// lanes cannot be serialized into without swapping conflicting
	// accesses: a[1]=a[0]; a[0]=a[1] style ping-pong.
	src := `
void f(int *a) {
	a[1] = a[0] + 1;
	a[0] = a[1] + 2;
	a[3] = a[2] + 1;
	a[2] = a[3] + 2;
}`
	orig, work, stats := roll(t, src, nil)
	// Whether or not a profitable roll is found, behaviour must hold.
	mustEquiv(t, orig, work, "f")
	// The natural 4-lane grouping must have been rejected by the
	// scheduler or profitability; a 2-lane subgroup may legally roll,
	// but never one that swaps the RAW pairs.
	t.Logf("stats: rolled=%d scheduleFailed=%d", stats.LoopsRolled, stats.ScheduleFailed)
}

func TestSchedulingIndependentStoreBefore(t *testing.T) {
	// An independent store ahead of the pattern stays in the pre-loop
	// code; the roll proceeds.
	src := `
int g;
void f(int *a, int v) {
	g = 123;
	a[0] = v;
	a[1] = v;
	a[2] = v;
	a[3] = v;
	a[4] = v;
	a[5] = v;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 1 {
		t.Errorf("rolled %d, want 1\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestSchedulingInterleavedMayAliasStoreBlocks(t *testing.T) {
	// A store to a possibly-aliasing object in the *middle* of the
	// pattern cannot move either way (the param could point at the
	// global), so the roll must be refused — and behaviour preserved.
	src := `
int g;
void f(int *a, int v) {
	a[0] = v;
	a[1] = v;
	g = 123;
	a[2] = v;
	a[3] = v;
	a[4] = v;
	a[5] = v;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 0 {
		t.Errorf("rolled %d, want 0 (conservative aliasing)\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestSchedulingRejectsCrossBoundaryCycle(t *testing.T) {
	// The call chain consumes a value computed from an earlier lane's
	// output through straight-line code — a circular dependence across
	// the loop boundary (§IV.D).
	src := `
extern int step(int x) pure;
int f(int a) {
	int r0 = step(a);
	int mid = r0 * 2 + 1;
	int r1 = step(mid);
	int mid2 = r1 * 3 + 1;
	int r2 = step(mid2);
	return r2;
}`
	orig, work, stats := roll(t, src, nil)
	mustEquiv(t, orig, work, "f")
	t.Logf("rolled=%d graphs=%d scheduleFailed=%d", stats.LoopsRolled, stats.GraphsBuilt, stats.ScheduleFailed)
}

func TestExternalUseMidLaneExtraction(t *testing.T) {
	// Lane 1's value is used after the pattern: the generator must
	// extract it through a stack array (not just the final lane).
	src := `
int g1; int g2;
void f(int *a, int v) {
	int x0 = v * 10;
	int x1 = v * 20;
	int x2 = v * 30;
	int x3 = v * 40;
	a[0] = x0; a[1] = x1; a[2] = x2; a[3] = x3;
	g1 = x1;
	g2 = x2;
}`
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	orig, work, stats := roll(t, src, opts)
	if stats.LoopsRolled == 0 {
		t.Fatalf("expected a roll\n%s", work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
	if !strings.Contains(work.FindFunc("f").String(), "roll.out") {
		t.Errorf("expected an extraction array:\n%s", work.FindFunc("f"))
	}
}

func TestExternalUseFinalLaneDirect(t *testing.T) {
	// Only the final lane escapes: no array needed, the loop's live-out
	// value is used directly.
	src := `
int g;
void f(int *a, int v) {
	int x0 = v + 1;
	int x1 = v + 2;
	int x2 = v + 3;
	int x3 = v + 4;
	a[0] = x0; a[1] = x1; a[2] = x2; a[3] = x3;
	g = x3;
}`
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	orig, work, stats := roll(t, src, opts)
	if stats.LoopsRolled == 0 {
		t.Fatalf("expected a roll\n%s", work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
	if strings.Contains(work.FindFunc("f").String(), "roll.out") {
		t.Errorf("final-lane-only escape should not allocate an array:\n%s", work.FindFunc("f"))
	}
}

func TestMismatchConstantsBecomeGlobalArray(t *testing.T) {
	// Irregular constants (no common stride) force a mismatch node; as
	// constants they should land in a read-only global, not a stack
	// array.
	src := `
void f(long *a) {
	a[0] = 1009; a[1] = 5021; a[2] = 2003; a[3] = 9049; a[4] = 4001;
	a[5] = 8087; a[6] = 3023; a[7] = 7039; a[8] = 6011; a[9] = 1097;
}`
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	orig, work, stats := roll(t, src, opts)
	if stats.LoopsRolled == 0 {
		t.Fatal("expected a roll")
	}
	if stats.NodeCounts[rolag.KindMismatch] == 0 {
		t.Errorf("expected a mismatch node: %v", stats.NodeCounts)
	}
	found := false
	for _, g := range work.Globals {
		if strings.HasPrefix(g.Name, "roll.cdata") && g.ReadOnly {
			found = true
		}
	}
	if !found {
		t.Error("expected a read-only constant pool global")
	}
	mustEquiv(t, orig, work, "f")
}

func TestMismatchDynamicBecomesStackArray(t *testing.T) {
	src := `
void f(long *a, long v, long w, long x, long y) {
	a[0] = v * 3; a[1] = w * 3; a[2] = x * 3; a[3] = y * 3;
}`
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	orig, work, stats := roll(t, src, opts)
	if stats.LoopsRolled == 0 {
		t.Fatal("expected a roll")
	}
	if !strings.Contains(work.FindFunc("f").String(), "roll.vdata") {
		t.Errorf("expected a stack mismatch array:\n%s", work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestProfitabilityGate(t *testing.T) {
	// Two stores: rolling always loses. The gate must refuse; AlwaysRoll
	// must force it.
	src := `void f(int *a, int v) { a[0] = v; a[1] = v; }`
	_, _, gated := roll(t, src, nil)
	if gated.LoopsRolled != 0 {
		t.Errorf("profitability should reject a 2-lane trivial roll (rolled %d)", gated.LoopsRolled)
	}
	if gated.NotProfitable == 0 {
		t.Error("expected a not-profitable rejection to be recorded")
	}
	opts := rolag.DefaultOptions()
	opts.AlwaysRoll = true
	orig, work, forced := roll(t, src, opts)
	if forced.LoopsRolled != 1 {
		t.Errorf("AlwaysRoll should roll anyway (rolled %d)", forced.LoopsRolled)
	}
	mustEquiv(t, orig, work, "f")
}

func TestNeutralBinOpPadding(t *testing.T) {
	// Lane 0 stores v (no add), others store v+k: the neutral-element
	// rule treats v as v+0.
	src := `
void f(int *a, int v) {
	a[0] = v;
	a[1] = v + 3;
	a[2] = v + 6;
	a[3] = v + 9;
	a[4] = v + 12;
	a[5] = v + 15;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d, want 1\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")

	// With the rule disabled the same function must fail or mismatch.
	noNeutral := rolag.DefaultOptions()
	noNeutral.EnableNeutralBinOp = false
	_, _, stats2 := roll(t, src, noNeutral)
	if stats2.LoopsRolled > 0 && stats2.NodeCounts[rolag.KindMismatch] == 0 {
		t.Error("without neutral binops this pattern needs a mismatch node (or no roll)")
	}
}

func TestCommutativeReordering(t *testing.T) {
	// Operands swap sides across lanes (loads cannot be CSE'd away, so
	// the lanes stay distinct); commutativity must realign them.
	src := `
void f(int *a, int *b, int v) {
	a[0] = b[0] * v;
	a[1] = v * b[1];
	a[2] = b[2] * v;
	a[3] = v * b[3];
	a[4] = b[4] * v;
	a[5] = v * b[5];
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d, want 1\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")

	// Without the rule, the swapped operands cannot align into a clean
	// match; any roll must then lean on mismatch machinery.
	noComm := rolag.DefaultOptions()
	noComm.EnableCommutative = false
	noComm.EnableMismatch = false
	_, _, s2 := roll(t, src, noComm)
	if s2.LoopsRolled != 0 {
		t.Errorf("without commutative reordering the pattern should not roll cleanly (rolled %d)", s2.LoopsRolled)
	}
}

func TestGepStructAsArray(t *testing.T) {
	// Homogeneous struct indexed by varying fields: rolled via bitcast +
	// flat index (Fig. 4b).
	src := `
struct H { int a; int b; int c; int d; int e; int f; };
void f(struct H *h, int v) {
	h->a = v; h->b = v; h->c = v; h->d = v; h->e = v; h->f = v;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d, want 1\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	if !strings.Contains(work.FindFunc("f").String(), "bitcast") {
		t.Errorf("expected struct-as-array bitcast:\n%s", work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestHeterogeneousStructNotRolled(t *testing.T) {
	// Mixed field types break the homogeneity requirement; the graph
	// must refuse the gep merge (and the function must stay correct).
	src := `
struct X { int a; long b; int c; long d; };
void f(struct X *x) {
	x->a = 1; x->b = 2; x->c = 3; x->d = 4;
}`
	orig, work, _ := roll(t, src, nil)
	mustEquiv(t, orig, work, "f")
}

func TestAblationFlagsDisableKinds(t *testing.T) {
	seqSrc := `void f(int *a) { a[0]=10; a[1]=12; a[2]=14; a[3]=16; a[4]=18; a[5]=20; }`
	noSeq := rolag.DefaultOptions()
	noSeq.EnableIntSeq = false
	noSeq.EnableMismatch = false
	_, _, s := roll(t, seqSrc, noSeq)
	if s.NodeCounts[rolag.KindIntSeq] != 0 {
		t.Error("sequence nodes must be disabled")
	}

	redSrc := `int f(const int *a) { return a[0]+a[1]+a[2]+a[3]+a[4]+a[5]; }`
	noRed := rolag.DefaultOptions()
	noRed.EnableReduction = false
	_, _, s2 := roll(t, redSrc, noRed)
	if s2.LoopsRolled != 0 {
		t.Error("reduction rolling must be disabled")
	}
	_, _, s3 := roll(t, redSrc, nil)
	if s3.LoopsRolled != 1 {
		t.Errorf("reduction should roll with defaults (got %d)", s3.LoopsRolled)
	}

	recSrc := `
extern int fm(int r, int v) pure;
int f(int r0, int *p) {
	int r = fm(r0, p[0]);
	r = fm(r, p[1]);
	r = fm(r, p[2]);
	r = fm(r, p[3]);
	r = fm(r, p[4]);
	return r;
}`
	noRec := rolag.DefaultOptions()
	noRec.EnableRecurrence = false
	_, _, s4 := roll(t, recSrc, noRec)
	if s4.NodeCounts[rolag.KindRecurrence] != 0 {
		t.Error("recurrence nodes must be disabled")
	}
	orig, work, s5 := roll(t, recSrc, nil)
	if s5.NodeCounts[rolag.KindRecurrence] == 0 {
		t.Errorf("recurrence expected with defaults: %v", s5.NodeCounts)
	}
	mustEquiv(t, orig, work, "f")
}

func TestMultipleGroupsInOneBlock(t *testing.T) {
	// Two sequential (non-interleaved) store runs: both roll, producing
	// two loops.
	src := `
void f(int *a, int *b, int v) {
	a[0] = v; a[1] = v; a[2] = v; a[3] = v; a[4] = v; a[5] = v; a[6] = v; a[7] = v;
	b[0] = 7; b[1] = 9; b[2] = 11; b[3] = 13; b[4] = 15; b[5] = 17; b[6] = 19; b[7] = 21;
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 2 {
		t.Errorf("rolled %d loops, want 2\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestVoidCallsRoll(t *testing.T) {
	src := `
extern void put(int x);
void f(int base) {
	put(base + 2);
	put(base + 4);
	put(base + 6);
	put(base + 8);
	put(base + 10);
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d, want 1\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestDifferentCalleesDontRoll(t *testing.T) {
	src := `
extern void pa(int x);
extern void pb(int x);
void f(int v) { pa(v); pb(v+1); pa(v+2); pb(v+3); }`
	orig, work, stats := roll(t, src, nil)
	// pa and pb groups are 2 lanes each and interleave; a joint roll is
	// legal but unprofitable at 2 lanes; equivalence must hold whatever
	// the decision.
	mustEquiv(t, orig, work, "f")
	t.Logf("rolled=%d", stats.LoopsRolled)
}

func TestRollInsideLoopBody(t *testing.T) {
	// The seed block is itself a loop body (the TSVC case): rolling
	// creates a nested inner loop and rewires the outer backedge.
	src := `
void f(int *a, int n) {
	for (int j = 0; j < n; j++) {
		a[0] = j; a[1] = j + 1; a[2] = j + 2; a[3] = j + 3;
		a[4] = j + 4; a[5] = j + 5; a[6] = j + 6; a[7] = j + 7;
	}
}`
	orig, work, stats := roll(t, src, nil)
	if stats.LoopsRolled != 1 {
		t.Fatalf("rolled %d, want 1\n%s", stats.LoopsRolled, work.FindFunc("f"))
	}
	mustEquiv(t, orig, work, "f")
}

func TestStatsAccounting(t *testing.T) {
	src := `void f(int *a, int v) { a[0] = v; a[1] = v; a[2] = v; a[3] = v; a[4] = v; a[5] = v; }`
	_, _, stats := roll(t, src, nil)
	if stats.BlocksScanned == 0 || stats.SeedGroups == 0 || stats.GraphsBuilt == 0 {
		t.Errorf("stats not accounted: %+v", stats)
	}
	if stats.LoopsRolled == 1 && stats.InstrsRolled == 0 {
		t.Error("InstrsRolled must count matched instructions")
	}
	// Add must merge stats.
	total := rolag.NewStats()
	total.Add(stats)
	total.Add(stats)
	if total.LoopsRolled != 2*stats.LoopsRolled {
		t.Error("Stats.Add broken")
	}
}
