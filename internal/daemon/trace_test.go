package daemon

// Tests for the request-tracing middleware and the observability
// surface of the daemon: X-Trace-Id minting/echo, the /debug/trace
// Chrome export, remarks over the wire, and the remark metrics series.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"rolag/internal/obs"
	"rolag/internal/service"
)

// tracingOn enables span recording for one test and restores the
// default-off state afterwards.
func tracingOn(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		obs.EnableTracing(false)
		obs.SetTraceCapacity(0)
	})
	obs.SetTraceCapacity(0)
	obs.EnableTracing(true)
}

func TestTraceIDEcho(t *testing.T) {
	srv := newTestServer(t)

	// An incoming X-Trace-Id is adopted and echoed verbatim.
	req, err := http.NewRequest("GET", srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "cafe0000deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "cafe0000deadbeef" {
		t.Errorf("echoed trace ID = %q, want the incoming one", got)
	}

	// Without one, the middleware mints a 16-hex-char ID.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	minted := resp2.Header.Get("X-Trace-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Errorf("minted trace ID = %q, want 16 hex chars", minted)
	}
}

func TestDebugTraceExport(t *testing.T) {
	tracingOn(t)
	srv := newTestServer(t)

	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}}`, testSrc)
	req, err := http.NewRequest("POST", srv.URL+"/v1/compile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "feedface00000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}

	tresp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", tresp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&chrome); err != nil {
		t.Fatalf("/debug/trace is not valid Chrome trace JSON: %v", err)
	}
	// The request must show up as both the HTTP span and the engine
	// span, correlated by the trace ID we sent.
	want := map[string]bool{"http:/v1/compile": false, "engine:compile": false}
	for _, ev := range chrome.TraceEvents {
		if _, ok := want[ev.Name]; ok && ev.Args["trace"] == "feedface00000001" {
			want[ev.Name] = true
			if ev.Ph != "X" {
				t.Errorf("span %s has phase %q, want X", ev.Name, ev.Ph)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %s span with our trace ID in /debug/trace (%d events)", name, len(chrome.TraceEvents))
		}
	}
}

func TestCompileRemarksOverWire(t *testing.T) {
	srv := newTestServer(t)
	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}, "remarks": true}`, testSrc)

	_, out := postCompile(t, srv, body)
	if len(out.Remarks) == 0 {
		t.Fatal("remarks requested but response carries none")
	}
	rolled := false
	for _, rm := range out.Remarks {
		if rm.Name == "rolled" && rm.Status == "passed" {
			rolled = true
			if rm.Func == "" || rm.Instr == "" {
				t.Errorf("rolled remark lacks provenance: %+v", rm)
			}
		}
	}
	if !rolled {
		t.Errorf("no rolled remark for a rolling source; remarks: %+v", out.Remarks)
	}

	// The second identical request is served from the cache and must
	// still carry the remarks (they are part of the cache entry).
	_, cached := postCompile(t, srv, body)
	if len(cached.Remarks) != len(out.Remarks) {
		t.Errorf("cached response has %d remarks, first had %d", len(cached.Remarks), len(out.Remarks))
	}

	// Without the flag the response must stay clean — remarks split the
	// cache key, so the cached remarked entry must not leak over.
	_, plain := postCompile(t, srv, fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}}`, testSrc))
	if len(plain.Remarks) != 0 {
		t.Errorf("remarks not requested but response carries %d", len(plain.Remarks))
	}
}

func TestRemarkMetricsSeries(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 0)
	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}, "remarks": true}`, testSrc)
	if resp, _ := postCompile(t, srv, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `rolagd_remarks_total{pass="rolag",reason="rolled"}`) {
		t.Errorf("/metrics lacks the rolagd_remarks_total series for the roll we compiled:\n%s", data)
	}
}

// TestTraceIDValidation: junk X-Trace-Id headers (non-hex, oversized,
// uppercase, empty) are re-minted instead of adopted, so a hostile
// client cannot pollute span rings or log fields.
func TestTraceIDValidation(t *testing.T) {
	srv := newTestServer(t)
	minted := regexp.MustCompile(`^[0-9a-f]{16}$`)
	cases := []struct {
		name, header string
	}{
		{"empty", ""},
		{"non-hex", "hello-not-hex-at-all"},
		{"too-short", "abc"},
		{"oversized", strings.Repeat("a", 200)},
		{"uppercase", "CAFE0000DEADBEEF"},
		{"traversal", "../../etc/passwd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("GET", srv.URL+"/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.header != "" {
				req.Header.Set("X-Trace-Id", tc.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			got := resp.Header.Get("X-Trace-Id")
			if got == tc.header && tc.header != "" {
				t.Errorf("junk trace ID %q adopted verbatim", tc.header)
			}
			if !minted.MatchString(got) {
				t.Errorf("re-minted trace ID = %q, want 16 hex chars", got)
			}
		})
	}
}

// TestDebugTraceFilterAndParent: /debug/trace?trace=<id> returns only
// that trace's spans; an adopted X-Trace-Parent shows up as the spans'
// parent arg; an invalid filter is a 400.
func TestDebugTraceFilterAndParent(t *testing.T) {
	tracingOn(t)
	srv := newTestServer(t)
	parent := "feedfeedfeedfeed"
	for i, id := range []string{"aaaa000000000001", "bbbb000000000002"} {
		body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag", "unroll": %d}}`, testSrc, i+1)
		req, err := http.NewRequest("POST", srv.URL+"/v1/compile", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Trace-Id", id)
		req.Header.Set("X-Trace-Parent", parent)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, resp.StatusCode)
		}
	}

	tresp, err := http.Get(srv.URL + "/debug/trace?trace=aaaa000000000001")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("filtered export is empty")
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Args["trace"] != "aaaa000000000001" {
			t.Errorf("filtered export leaked trace %q (span %s)", ev.Args["trace"], ev.Name)
		}
		if ev.Args["parent"] != parent {
			t.Errorf("span %s parent = %q, want adopted %q", ev.Name, ev.Args["parent"], parent)
		}
	}

	bad, err := http.Get(srv.URL + "/debug/trace?trace=NOT-HEX")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid filter: status %d, want 400", bad.StatusCode)
	}
}

// TestPerDaemonTraceRing: a daemon given its own ring records there,
// not in the process default — the property that makes multi-daemon
// processes (loadgen fleet, cluster tests) stitchable.
func TestPerDaemonTraceRing(t *testing.T) {
	tracingOn(t)
	ringA := obs.NewTraceRing(64)
	d := New(Config{Engine: service.Config{Workers: 2}, TraceRing: ringA})
	t.Cleanup(func() { d.Close(context.Background()) })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	req, err := http.NewRequest("GET", srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "ce11000000000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if evs := ringA.EventsFor("ce11000000000001"); len(evs) == 0 {
		t.Error("daemon-scoped ring recorded nothing")
	}
	for _, ev := range obs.TraceEvents() {
		if ev.Trace == "ce11000000000001" {
			t.Error("daemon with private ring leaked spans into the default ring")
		}
	}
}

// TestTraceDroppedCounter: overflowing a tiny ring surfaces in both
// /metrics (rolagd_trace_dropped_total) and /v1/cachestats.
func TestTraceDroppedCounter(t *testing.T) {
	tracingOn(t)
	ring := obs.NewTraceRing(2)
	d := New(Config{Engine: service.Config{Workers: 2}, TraceRing: ring})
	t.Cleanup(func() { d.Close(context.Background()) })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	for i := 0; i < 6; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if ring.Dropped() == 0 {
		t.Fatal("ring of capacity 2 dropped nothing after 6 requests")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "rolagd_trace_dropped_total") {
		t.Error("/metrics lacks rolagd_trace_dropped_total")
	}
	m := regexp.MustCompile(`rolagd_trace_dropped_total (\d+)`).FindStringSubmatch(string(data))
	if m == nil || m[1] == "0" {
		t.Errorf("rolagd_trace_dropped_total not positive: %v", m)
	}

	stats := d.CacheStats()
	if stats.TraceDropped == 0 {
		t.Error("CacheStats.TraceDropped = 0 after overflow")
	}
}

// TestCacheStatsFleetFields: the scrape surface carries route
// histograms and outcome counters the router aggregates.
func TestCacheStatsFleetFields(t *testing.T) {
	d, srv := newTestDaemon(t, service.Config{}, 10*time.Second)
	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}}`, testSrc)
	if resp, _ := postCompile(t, srv, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	stats := d.CacheStats()
	h, ok := stats.Routes["/v1/compile"]
	if !ok {
		t.Fatalf("no /v1/compile route histogram: %+v", stats.Routes)
	}
	if h.Count != 1 || h.SumSeconds <= 0 {
		t.Errorf("route histogram = %+v, want one observation", h)
	}
	if b, ok := stats.Routes["/v1/batch"]; !ok || b.Count != 0 {
		t.Errorf("batch histogram = %+v, want present and empty", b)
	}
}
