package daemon

// Tests for the request-tracing middleware and the observability
// surface of the daemon: X-Trace-Id minting/echo, the /debug/trace
// Chrome export, remarks over the wire, and the remark metrics series.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"rolag/internal/obs"
	"rolag/internal/service"
)

// tracingOn enables span recording for one test and restores the
// default-off state afterwards.
func tracingOn(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		obs.EnableTracing(false)
		obs.SetTraceCapacity(0)
	})
	obs.SetTraceCapacity(0)
	obs.EnableTracing(true)
}

func TestTraceIDEcho(t *testing.T) {
	srv := newTestServer(t)

	// An incoming X-Trace-Id is adopted and echoed verbatim.
	req, err := http.NewRequest("GET", srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "cafe0000deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "cafe0000deadbeef" {
		t.Errorf("echoed trace ID = %q, want the incoming one", got)
	}

	// Without one, the middleware mints a 16-hex-char ID.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	minted := resp2.Header.Get("X-Trace-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Errorf("minted trace ID = %q, want 16 hex chars", minted)
	}
}

func TestDebugTraceExport(t *testing.T) {
	tracingOn(t)
	srv := newTestServer(t)

	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}}`, testSrc)
	req, err := http.NewRequest("POST", srv.URL+"/v1/compile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "feedface00000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}

	tresp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", tresp.StatusCode)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&chrome); err != nil {
		t.Fatalf("/debug/trace is not valid Chrome trace JSON: %v", err)
	}
	// The request must show up as both the HTTP span and the engine
	// span, correlated by the trace ID we sent.
	want := map[string]bool{"http:/v1/compile": false, "engine:compile": false}
	for _, ev := range chrome.TraceEvents {
		if _, ok := want[ev.Name]; ok && ev.Args["trace"] == "feedface00000001" {
			want[ev.Name] = true
			if ev.Ph != "X" {
				t.Errorf("span %s has phase %q, want X", ev.Name, ev.Ph)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %s span with our trace ID in /debug/trace (%d events)", name, len(chrome.TraceEvents))
		}
	}
}

func TestCompileRemarksOverWire(t *testing.T) {
	srv := newTestServer(t)
	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}, "remarks": true}`, testSrc)

	_, out := postCompile(t, srv, body)
	if len(out.Remarks) == 0 {
		t.Fatal("remarks requested but response carries none")
	}
	rolled := false
	for _, rm := range out.Remarks {
		if rm.Name == "rolled" && rm.Status == "passed" {
			rolled = true
			if rm.Func == "" || rm.Instr == "" {
				t.Errorf("rolled remark lacks provenance: %+v", rm)
			}
		}
	}
	if !rolled {
		t.Errorf("no rolled remark for a rolling source; remarks: %+v", out.Remarks)
	}

	// The second identical request is served from the cache and must
	// still carry the remarks (they are part of the cache entry).
	_, cached := postCompile(t, srv, body)
	if len(cached.Remarks) != len(out.Remarks) {
		t.Errorf("cached response has %d remarks, first had %d", len(cached.Remarks), len(out.Remarks))
	}

	// Without the flag the response must stay clean — remarks split the
	// cache key, so the cached remarked entry must not leak over.
	_, plain := postCompile(t, srv, fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}}`, testSrc))
	if len(plain.Remarks) != 0 {
		t.Errorf("remarks not requested but response carries %d", len(plain.Remarks))
	}
}

func TestRemarkMetricsSeries(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 0)
	body := fmt.Sprintf(`{"source": %q, "config": {"opt": "rolag"}, "remarks": true}`, testSrc)
	if resp, _ := postCompile(t, srv, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `rolagd_remarks_total{pass="rolag",reason="rolled"}`) {
		t.Errorf("/metrics lacks the rolagd_remarks_total series for the roll we compiled:\n%s", data)
	}
}
