package daemon

// Warm-restart tests at the daemon layer: a daemon given a snapshot
// path must come back warm after Close + New on the same path, force a
// save on POST /v1/snapshot, and surface the snapshot counters in
// /v1/cachestats.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// snapshotDaemon starts a daemon with a snapshot at path. The periodic
// ticker is disabled so the tests control exactly when saves happen.
func snapshotDaemon(t *testing.T, path string) (*Daemon, *httptest.Server) {
	t.Helper()
	d := New(Config{
		Engine:           service.Config{Workers: 2},
		RequestCap:       10 * time.Second,
		SnapshotPath:     path,
		SnapshotInterval: -1,
	})
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func compileSources(t *testing.T, srv *httptest.Server, srcs []string) []rolagdapi.CompileResponse {
	t.Helper()
	out := make([]rolagdapi.CompileResponse, len(srcs))
	for i, src := range srcs {
		body, _ := json.Marshal(rolagdapi.CompileRequest{Source: src})
		resp, cr := postCompile(t, srv, string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, resp.StatusCode)
		}
		out[i] = cr
	}
	return out
}

func TestDaemonWarmRestart(t *testing.T) {
	path := t.TempDir() + "/shard.snapshot"
	srcs := []string{
		"void f(int *a) { a[0] = a[0] + 1; a[1] = a[1] + 1; }",
		"void g(int *a) { a[0] = a[0] * 2; a[1] = a[1] * 2; a[2] = a[2] * 2; }",
		"int h(int x) { return x + 41; }",
	}

	d1, srv1 := snapshotDaemon(t, path)
	first := compileSources(t, srv1, srcs)
	// Graceful shutdown writes the drain-time snapshot.
	if err := d1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot after drain: %v", err)
	}

	d2, srv2 := snapshotDaemon(t, path)
	defer d2.Close(context.Background())
	second := compileSources(t, srv2, srcs)
	for i := range srcs {
		if !second[i].CacheHit {
			t.Fatalf("source %d: not a cache hit after warm restart", i)
		}
		if second[i].IR != first[i].IR {
			t.Fatalf("source %d: IR changed across restart", i)
		}
	}
	m := d2.Engine().Metrics()
	if m.Compiles != 0 {
		t.Fatalf("warm restart still compiled %d times", m.Compiles)
	}
	if m.SnapshotEntries != int64(len(srcs)) || m.SnapshotWarmHits != int64(len(srcs)) {
		t.Fatalf("entries=%d warmHits=%d, want %d/%d",
			m.SnapshotEntries, m.SnapshotWarmHits, len(srcs), len(srcs))
	}

	// The counters surface on the cluster stats endpoint.
	var cs rolagdapi.CacheStats
	resp, err := http.Get(srv2.URL + "/v1/cachestats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if cs.SnapshotLoads != 1 || cs.SnapshotEntries != int64(len(srcs)) || cs.SnapshotWarmHits != int64(len(srcs)) {
		t.Fatalf("cachestats loads=%d entries=%d warmHits=%d", cs.SnapshotLoads, cs.SnapshotEntries, cs.SnapshotWarmHits)
	}
}

func TestDaemonSnapshotEndpoint(t *testing.T) {
	path := t.TempDir() + "/shard.snapshot"
	_, srv := snapshotDaemon(t, path)
	compileSources(t, srv, []string{"int h(int x) { return x + 1; }"})

	resp, err := http.Post(srv.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Entries int    `json:"entries"`
		Path    string `json:"path"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Entries != 1 || out.Path != path {
		t.Fatalf("forced save: %+v", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing after forced save: %v", err)
	}

	// Without a snapshot path the endpoint refuses cleanly.
	_, plain := newTestDaemon(t, service.Config{}, time.Second)
	presp, err := http.Post(plain.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unconfigured daemon: status %d, want 501", presp.StatusCode)
	}
}

// TestDaemonRejectsTamperedSnapshot corrupts the saved file and pins
// the cold-but-alive restart: rejected counter up, no entries, daemon
// serving, and the rejected series visible on /metrics.
func TestDaemonRejectsTamperedSnapshot(t *testing.T) {
	path := t.TempDir() + "/shard.snapshot"
	d1, srv1 := snapshotDaemon(t, path)
	compileSources(t, srv1, []string{"int h(int x) { return x + 2; }"})
	if err := d1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, srv2 := snapshotDaemon(t, path)
	defer d2.Close(context.Background())
	m := d2.Engine().Metrics()
	if m.SnapshotRejected != 1 || m.SnapshotEntries != 0 || m.CacheEntries != 0 {
		t.Fatalf("rejected=%d entries=%d cache=%d, want 1/0/0",
			m.SnapshotRejected, m.SnapshotEntries, m.CacheEntries)
	}
	out := compileSources(t, srv2, []string{"int h(int x) { return x + 2; }"})
	if out[0].CacheHit {
		t.Fatal("cache hit on what must be a cold start")
	}

	mresp, err := http.Get(srv2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "rolagd_snapshot_rejected_total 1") {
		t.Fatal("rolagd_snapshot_rejected_total not exported")
	}
}
