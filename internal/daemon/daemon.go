// Package daemon is the rolagd HTTP surface as a library: the service
// engine behind the /v1 API, health/readiness probes, Prometheus
// metrics, request tracing, and — when given a shard identity — the
// cluster endpoints (peer cache export, batch compile, cache stats).
//
// cmd/rolagd is a thin flag-parsing wrapper around this package;
// cmd/rolag-router and cmd/rolag-loadgen embed it to spawn real
// in-process shards for tests and benchmarks, so the daemon every test
// drives is byte-for-byte the daemon production runs.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/cluster/ring"
	"rolag/internal/obs"
	"rolag/internal/obs/fleet"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// shedRetryAfter is the Retry-After hint (seconds) on 429 replies:
// compiles are fast, so shed load can come back almost immediately.
const shedRetryAfter = 1

// DefaultPeerTimeout bounds one fetch-on-miss peer cache lookup. A
// peer lookup is only worth a small fraction of a fresh compile
// (~2.5 ms/function); past that the shard compiles locally instead of
// waiting on a slow or partitioned peer.
const DefaultPeerTimeout = 250 * time.Millisecond

// DefaultSnapshotInterval is the periodic cache-snapshot cadence when
// Config.SnapshotPath is set without an explicit interval.
const DefaultSnapshotInterval = 30 * time.Second

// Config assembles a daemon.
type Config struct {
	// Engine sizes the compilation engine. Config.PeerFetch is
	// overwritten when the daemon is clustered (ShardID set); set the
	// hook here only for standalone daemons that want a custom tier.
	Engine service.Config
	// RequestCap bounds every compile deadline; a request's timeoutMs
	// is clamped to it (0 = no cap and timeoutMs is used as given).
	RequestCap time.Duration
	// Log receives one structured line per request, tagged with the
	// request's trace ID; nil falls back to slog.Default().
	Log *slog.Logger

	// ShardID names this replica on the cluster's consistent-hash
	// ring. Empty = standalone daemon (no peer cache tier).
	ShardID string
	// Peers maps every shard name (including ShardID) to its base URL.
	// All replicas and the router must share this map — ring ownership
	// is computed independently by each from the same membership.
	Peers map[string]string
	// VNodes is the ring's virtual-node count per shard (0 = default).
	VNodes int
	// PeerTimeout bounds one peer cache fetch (0 = DefaultPeerTimeout).
	PeerTimeout time.Duration

	// SnapshotPath, when set, makes the warm cache survive restarts:
	// the daemon loads the file at startup (a corrupt or stale snapshot
	// is logged, counted, and ignored — the cache starts cold, the
	// process never crashes), rewrites it every SnapshotInterval and on
	// POST /v1/snapshot, and saves once more while draining in Close.
	SnapshotPath string
	// SnapshotInterval is the periodic save cadence
	// (0 = DefaultSnapshotInterval; negative disables the ticker,
	// leaving only drain-time and on-demand saves).
	SnapshotInterval time.Duration

	// TraceRing, when set, is where this daemon's spans are recorded
	// instead of the process-default ring. Multi-daemon processes (the
	// loadgen fleet harness, cluster tests) give each shard its own
	// ring so /debug/trace stays per-shard and the router's trace
	// collector can stitch genuinely distinct segments.
	TraceRing *obs.TraceRing
}

// Daemon wires the engine to the HTTP surface and carries the drain
// flag that splits liveness from readiness.
type Daemon struct {
	engine     *service.Engine
	requestCap time.Duration
	log        *slog.Logger

	shardID     string
	peers       map[string]string
	ring        *ring.Ring
	peerTimeout time.Duration
	peerClient  *http.Client

	snapshotPath string
	snapMu       sync.Mutex // serializes snapshot saves
	snapStop     chan struct{}
	snapOnce     sync.Once

	traceRing *obs.TraceRing
	// routeHists are the per-route request-latency histograms shipped
	// in /v1/cachestats for the router's fleet aggregation. Unlike the
	// engine's compile-latency histogram (fresh compiles only), these
	// observe every request — cache hits included — so they are
	// comparable with what the router observes from outside.
	compileHist fleet.Hist
	batchHist   fleet.Hist

	draining atomic.Bool
}

// New builds the engine and its HTTP surface. When cfg.ShardID is set
// the engine's cache misses consult the key's home shard first
// (fetch-on-miss peer caching) before compiling.
func New(cfg Config) *Daemon {
	d := &Daemon{
		requestCap:  cfg.RequestCap,
		log:         cfg.Log,
		shardID:     cfg.ShardID,
		peers:       cfg.Peers,
		peerTimeout: cfg.PeerTimeout,
		traceRing:   cfg.TraceRing,
	}
	if d.peerTimeout <= 0 {
		d.peerTimeout = DefaultPeerTimeout
	}
	ecfg := cfg.Engine
	if cfg.ShardID != "" && len(cfg.Peers) > 1 {
		d.ring = ring.New(cfg.VNodes)
		for name := range cfg.Peers {
			d.ring.Add(name)
		}
		d.peerClient = &http.Client{Timeout: d.peerTimeout}
		ecfg.PeerFetch = d.peerFetch
	}
	d.engine = service.New(ecfg)
	if cfg.SnapshotPath != "" {
		d.snapshotPath = cfg.SnapshotPath
		if n, err := d.engine.LoadSnapshotFile(cfg.SnapshotPath); err != nil {
			d.logger().Warn("cache snapshot rejected, starting cold",
				"shard", d.shardID, "path", cfg.SnapshotPath, "err", err)
		} else if n > 0 {
			d.logger().Info("cache snapshot loaded",
				"shard", d.shardID, "path", cfg.SnapshotPath, "entries", n)
		}
		d.snapStop = make(chan struct{})
		interval := cfg.SnapshotInterval
		if interval == 0 {
			interval = DefaultSnapshotInterval
		}
		if interval > 0 {
			go d.snapshotLoop(interval)
		}
	}
	return d
}

// snapshotLoop periodically rewrites the snapshot until Close.
func (d *Daemon) snapshotLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-d.snapStop:
			return
		case <-t.C:
			if _, err := d.SaveSnapshotNow(); err != nil {
				d.logger().Warn("periodic cache snapshot failed",
					"shard", d.shardID, "err", err)
			}
		}
	}
}

// SaveSnapshotNow writes the cache to SnapshotPath (atomically, via
// temp file + rename) and returns the number of entries written.
func (d *Daemon) SaveSnapshotNow() (int, error) {
	if d.snapshotPath == "" {
		return 0, errors.New("daemon: no snapshot path configured")
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	return d.engine.SaveSnapshotFile(d.snapshotPath, d.shardID)
}

// Engine exposes the underlying compilation engine (metrics, close).
func (d *Daemon) Engine() *service.Engine { return d.engine }

// ShardID returns the daemon's cluster identity ("" when standalone).
func (d *Daemon) ShardID() string { return d.shardID }

// Close drains the engine (see service.Engine.Close) after stopping
// the snapshot ticker and taking one final drain-time snapshot, so a
// graceful restart always resumes from the freshest possible cache.
func (d *Daemon) Close(ctx context.Context) error {
	if d.snapStop != nil {
		d.snapOnce.Do(func() { close(d.snapStop) })
		if n, err := d.SaveSnapshotNow(); err != nil {
			d.logger().Warn("drain-time cache snapshot failed", "shard", d.shardID, "err", err)
		} else {
			d.logger().Info("drain-time cache snapshot saved", "shard", d.shardID, "entries", n)
		}
	}
	return d.engine.Close(ctx)
}

// Crash terminates the daemon the way a dead process would: the
// snapshot ticker stops, in-flight work is abandoned, and — unlike
// Close — no drain-time snapshot is written. After a Crash, warm
// restart depends entirely on the last periodic snapshot, which is
// exactly the property the chaos harness exists to prove.
func (d *Daemon) Crash() {
	if d.snapStop != nil {
		d.snapOnce.Do(func() { close(d.snapStop) })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d.engine.Close(ctx)
}

func (d *Daemon) logger() *slog.Logger {
	if d.log != nil {
		return d.log
	}
	return slog.Default()
}

// BeginDrain flips /readyz to 503. Called when shutdown starts, before
// the listener closes, so load balancers stop routing here first.
func (d *Daemon) BeginDrain() { d.draining.Store(true) }

// peerFetch is the engine's fetch-on-miss hook: when this shard is not
// the key's home, ask the home shard's cache before compiling. It only
// ever reads the peer's cache (GET /v1/cache/{key} never compiles), so
// lookups cannot recurse across the cluster. Any failure — peer down,
// timeout, 404 — degrades silently to a local compile.
func (d *Daemon) peerFetch(ctx context.Context, key string) (*service.CacheEntry, bool) {
	home := d.ring.Owner(key)
	if home == d.shardID || home == "" {
		return nil, false
	}
	base, ok := d.peers[home]
	if !ok {
		return nil, false
	}
	fctx, cancel := context.WithTimeout(ctx, d.peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, base+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	// The peer lookup is a cross-process hop: it carries the trace ID
	// plus its own span ID as X-Trace-Parent, so the peer's spans
	// attach under this hop in the stitched trace. hopSpan allocates
	// only when tracing is on (span is the zero time otherwise).
	tr := obs.TraceFrom(ctx)
	span := obs.Now()
	var hopID string
	if tr.Active() {
		req.Header.Set("X-Trace-Id", tr.ID)
		if !span.IsZero() && obs.TracingEnabled() {
			hopID = obs.NewSpanID()
			req.Header.Set("X-Trace-Parent", hopID)
		}
	}
	hopDone := func(status string) {
		obs.EndHopSpan(tr, "peer:"+home, span, hopID, "/v1/cache", status)
	}
	resp, err := d.peerClient.Do(req)
	if err != nil {
		hopDone("error")
		return nil, true
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		hopDone("error")
		return nil, true
	}
	var ce service.CacheEntry
	if err := json.NewDecoder(resp.Body).Decode(&ce); err != nil {
		hopDone("error")
		return nil, true
	}
	hopDone("ok")
	return &ce, true
}

// effectiveTimeout resolves a request's timeoutMs against the server
// cap: the smaller of the two wins, and with no cap the request value
// is used as-is.
func effectiveTimeout(requestMs int, cap time.Duration) time.Duration {
	reqTO := time.Duration(requestMs) * time.Millisecond
	switch {
	case reqTO <= 0:
		return cap
	case cap > 0 && reqTO > cap:
		return cap
	default:
		return reqTO
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorStatus maps an engine error onto its HTTP status and stamps
// overload headers.
func errorStatus(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, service.ErrOverloaded):
		w.Header().Set("Retry-After", fmt.Sprint(shedRetryAfter))
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// toWire maps an engine response onto the shared wire type.
func toWire(resp *service.Response, elapsed time.Duration) rolagdapi.CompileResponse {
	out := rolagdapi.CompileResponse{
		IR:           resp.IR,
		SizeBefore:   resp.SizeBefore,
		SizeAfter:    resp.SizeAfter,
		BinaryBefore: resp.BinaryBefore,
		BinaryAfter:  resp.BinaryAfter,
		Reduction:    resp.Reduction(),
		Rerolled:     resp.Rerolled,
		CacheHit:     resp.CacheHit,
		ElapsedMs:    float64(elapsed) / float64(time.Millisecond),
	}
	if resp.Stats != nil {
		out.LoopsRolled = resp.Stats.LoopsRolled
		out.NodeCounts = rolagdapi.NodeCountsToWire(resp.Stats.NodeCounts)
	}
	if resp.Degraded != nil {
		out.Degraded = true
		out.DegradedPasses = resp.Degraded.Passes()
	}
	out.Remarks = resp.Remarks
	out.Asm = resp.Asm
	out.TextBytes = resp.TextBytes
	return out
}

func (d *Daemon) handleCompile(w http.ResponseWriter, r *http.Request) {
	var cr rolagdapi.CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	req, err := cr.ToService()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	ctx := r.Context()
	if to := effectiveTimeout(cr.TimeoutMs, d.requestCap); to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	start := time.Now()
	resp, err := d.engine.Compile(ctx, req)
	if err != nil {
		writeJSON(w, errorStatus(w, err), rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, toWire(resp, time.Since(start)))
}

// handleBatch compiles a whole module/corpus in one request, fanning
// the items out over the worker pool and returning results in item
// order. Per-item failures land in the item's error field; the batch
// itself only fails on malformed JSON or an empty item list.
func (d *Daemon) handleBatch(w http.ResponseWriter, r *http.Request) {
	var br rolagdapi.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(br.Items) == 0 {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "batch has no items"})
		return
	}
	start := time.Now()
	out := rolagdapi.BatchResponse{
		Items: make([]rolagdapi.BatchItemResult, len(br.Items)),
		Shard: d.shardID,
	}
	// Items whose config fails to map are reported per-item without
	// aborting the batch; the rest compile through the engine.
	reqs := make([]service.Request, 0, len(br.Items))
	idx := make([]int, 0, len(br.Items))
	for i := range br.Items {
		req, err := br.Items[i].ToService()
		if err != nil {
			out.Items[i].Error = err.Error()
			continue
		}
		reqs = append(reqs, req)
		idx = append(idx, i)
	}
	ctx := r.Context()
	if to := effectiveTimeout(br.TimeoutMs, d.requestCap); to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	items := d.engine.CompileBatch(ctx, reqs)
	for j, item := range items {
		i := idx[j]
		if item.Err != nil {
			out.Items[i].Error = item.Err.Error()
			continue
		}
		out.Items[i].CompileResponse = toWire(item.Resp, 0)
		out.Items[i].Shard = d.shardID
	}
	out.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, out)
}

// handleCacheExport serves one cache entry to a peer shard (or any
// curious client). It reads only the local cache — a miss is a plain
// 404, never a compile — which is what makes the peer tier safe: no
// fan-out, no recursion, no way for a cold cluster to stampede itself.
func (d *Daemon) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ce, ok := d.engine.ExportCached(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, rolagdapi.ErrorResponse{Error: "key not cached"})
		return
	}
	writeJSON(w, http.StatusOK, ce)
}

// obsRing resolves the ring this daemon's spans land in.
func (d *Daemon) obsRing() *obs.TraceRing {
	if d.traceRing != nil {
		return d.traceRing
	}
	return obs.DefaultRing()
}

// CacheStats snapshots the daemon's cache counters in wire form,
// including the fleet-telemetry fields the router's scrape loop
// aggregates (request outcomes, per-route latency histograms, dropped
// trace spans).
func (d *Daemon) CacheStats() rolagdapi.CacheStats {
	s := d.engine.Metrics()
	return rolagdapi.CacheStats{
		Shard:        d.shardID,
		Requests:     s.Requests,
		CacheHits:    s.CacheHits,
		DedupHits:    s.DedupHits,
		CacheMisses:  s.CacheMisses,
		PeerHits:     s.PeerHits,
		PeerMisses:   s.PeerMisses,
		Compiles:     s.Compiles,
		CacheEntries: s.CacheEntries,

		SnapshotSaves:    s.SnapshotSaves,
		SnapshotLoads:    s.SnapshotLoads,
		SnapshotRejected: s.SnapshotRejected,
		SnapshotEntries:  s.SnapshotEntries,
		SnapshotWarmHits: s.SnapshotWarmHits,

		Errors:       s.Errors,
		Shed:         s.Shed,
		Degraded:     s.Degraded,
		InFlight:     s.InFlight,
		TraceDropped: d.obsRing().Dropped(),
		Routes: map[string]fleet.HistSnapshot{
			"/v1/compile": d.compileHist.Snapshot(),
			"/v1/batch":   d.batchHist.Snapshot(),
		},
	}
}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// traced wraps the route mux with per-request tracing: it adopts or
// mints the X-Trace-Id, threads an obs.TraceContext through the request
// context (so engine, sandbox, and RoLAG spans land on this request's
// trace), records the HTTP handling itself as a span, and emits one
// structured log line per request. Compiles log at Info, probes
// (health/metrics/debug) at Debug.
func (d *Daemon) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Adopt the caller's trace ID and parent span only after
		// validation: junk headers (non-hex, oversized, empty) re-mint
		// instead of polluting the span ring and log fields.
		tr := obs.NewTrace(obs.AdoptTraceID(r.Header.Get("X-Trace-Id")))
		tr = tr.InRing(d.traceRing).WithParent(obs.AdoptSpanID(r.Header.Get("X-Trace-Parent")))
		w.Header().Set("X-Trace-Id", tr.ID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		span := obs.Now()
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		obs.EndSpan(tr, "http:"+r.URL.Path, span, r.Method)
		switch r.URL.Path {
		case "/v1/compile":
			d.compileHist.Observe(time.Since(start).Seconds())
		case "/v1/batch":
			d.batchHist.Observe(time.Since(start).Seconds())
		}

		level := slog.LevelDebug
		if r.URL.Path == "/v1/compile" || r.URL.Path == "/v1/batch" {
			level = slog.LevelInfo
		}
		d.logger().Log(r.Context(), level, "request",
			"trace", tr.ID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed", time.Since(start),
		)
	})
}

// Handler builds the daemon's routes behind the tracing middleware.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", d.handleCompile)
	mux.HandleFunc("POST /v1/batch", d.handleBatch)
	mux.HandleFunc("GET /v1/cache/{key}", d.handleCacheExport)
	mux.HandleFunc("GET /v1/cachestats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.CacheStats())
	})

	// Force a cache snapshot save right now (operators, tests, and the
	// chaos harness). 501 when the daemon runs without a snapshot path.
	mux.HandleFunc("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if d.snapshotPath == "" {
			writeJSON(w, http.StatusNotImplemented, rolagdapi.ErrorResponse{Error: "snapshotting not configured (start with -snapshot)"})
			return
		}
		n, err := d.SaveSnapshotNow()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, rolagdapi.ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"entries": n, "path": d.snapshotPath})
	})

	// Liveness: the process is up and serving HTTP. Stays 200 through a
	// graceful drain so orchestrators don't kill a draining instance.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"shard":    d.shardID,
			"draining": d.draining.Load(),
			"metrics":  d.engine.Metrics(),
		})
	})

	// Readiness: whether new traffic should be routed here. 503 while
	// draining or while the core optimization is breaker-dark (served
	// results would silently skip RoLAG).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		state := "ready"
		switch {
		case d.draining.Load():
			status, state = http.StatusServiceUnavailable, "draining"
		case d.engine.Dark():
			status, state = http.StatusServiceUnavailable, "breaker-dark"
		}
		writeJSON(w, status, map[string]any{
			"status":   state,
			"breakers": d.engine.Breakers(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s := d.engine.Metrics()
		s.WritePrometheus(w)
		fmt.Fprintf(w, "# HELP rolagd_trace_dropped_total Trace spans overwritten in the bounded ring before export.\n")
		fmt.Fprintf(w, "# TYPE rolagd_trace_dropped_total counter\nrolagd_trace_dropped_total %d\n", d.obsRing().Dropped())
	})

	// expvar.Publish panics on duplicate names; tests and the loadgen
	// build several daemons per process.
	if expvar.Get("rolagd") == nil {
		e := d.engine
		expvar.Publish("rolagd", expvar.Func(func() any { return e.Metrics() }))
	}
	mux.Handle("GET /debug/vars", expvar.Handler())

	// The span ring buffer as Chrome trace-event JSON; load it in
	// chrome://tracing or https://ui.perfetto.dev. ?trace=<id> filters
	// to one trace — the router's stitching collector fetches exactly
	// that from every shard.
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		filter := r.URL.Query().Get("trace")
		if filter != "" && !obs.ValidTraceID(filter) {
			writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "invalid trace id"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		d.obsRing().WriteChrome(w, filter)
	})

	// Runtime profiling. The default mux registers these as a side
	// effect of importing net/http/pprof; rolagd builds its own mux, so
	// wire them explicitly.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return d.traced(mux)
}
