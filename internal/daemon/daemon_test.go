package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rolag/internal/faultpoint"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

type CompileResponse = rolagdapi.CompileResponse

func newTestDaemon(t *testing.T, cfg service.Config, requestCap time.Duration) (*Daemon, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	d := New(Config{Engine: cfg, RequestCap: requestCap})
	t.Cleanup(func() { d.Close(context.Background()) })
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, srv := newTestDaemon(t, service.Config{}, 10*time.Second)
	return srv
}

const testSrc = `void f(int *a) {
  a[0] = a[0] + 1;
  a[1] = a[1] + 1;
  a[2] = a[2] + 1;
  a[3] = a[3] + 1;
}`

func postCompile(t *testing.T, srv *httptest.Server, body string) (*http.Response, CompileResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out CompileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestCompileEndpoint(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(map[string]any{"source": testSrc})
	resp, out := postCompile(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.IR == "" {
		t.Error("missing IR in response")
	}
	if out.BinaryBefore == 0 || out.BinaryAfter == 0 {
		t.Errorf("missing sizes: %+v", out)
	}
	if out.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if out.Degraded {
		t.Errorf("healthy compile reported degraded: %+v", out.DegradedPasses)
	}

	// Identical request → cache hit, identical IR.
	resp2, out2 := postCompile(t, srv, string(body))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Error("second request missed the cache")
	}
	if out2.IR != out.IR {
		t.Error("cached IR differs")
	}
}

// TestCompileFormatAsm posts format=asm and checks the assembly and
// measured .text size come back on the wire, plus the emit counter.
func TestCompileFormatAsm(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(map[string]any{"source": testSrc, "format": "asm"})
	resp, out := postCompile(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Asm == "" || !strings.Contains(out.Asm, "f:") {
		t.Errorf("missing assembly in response: %q", out.Asm)
	}
	if out.TextBytes <= 0 {
		t.Errorf("textBytes = %d, want > 0", out.TextBytes)
	}

	badBody, _ := json.Marshal(map[string]any{"source": testSrc, "format": "elf"})
	if resp, _ := postCompile(t, srv, string(badBody)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mb), `rolagd_emit_total{format="asm"} 1`) {
		t.Errorf("metrics missing asm emit counter:\n%s", mb)
	}
}

func TestCompileEndpointErrors(t *testing.T) {
	srv := newTestServer(t)

	resp, _ := postCompile(t, srv, `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postCompile(t, srv, `{"source":"void f() {}","config":{"opt":"wat"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad opt: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postCompile(t, srv, `{"source":"int f( {"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("compile error: status %d, want 422", resp.StatusCode)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(map[string]any{"source": testSrc})
	postCompile(t, srv, string(body))

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status  string                  `json:"status"`
		Metrics service.MetricsSnapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Metrics.Requests == 0 {
		t.Errorf("unexpected health: %+v", health)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"rolagd_requests_total", "rolagd_cache_hits_total",
		"rolagd_compile_seconds_bucket{le=\"+Inf\"}", "rolagd_loops_rolled_total",
		"rolagd_degraded_total", "rolagd_breaker_open_total", "rolagd_shed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestDegradedResponse injects one pass failure and checks that the
// response flags it, names the pass, and that the degraded counters
// reach /metrics.
func TestDegradedResponse(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	srv := newTestServer(t)

	faultpoint.Arm("pass:constfold", faultpoint.KindError, 1)
	body, _ := json.Marshal(map[string]any{"source": testSrc, "config": map[string]any{"name": "degraded"}})
	resp, out := postCompile(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Degraded {
		t.Fatal("injected pass failure not reported as degraded")
	}
	found := false
	for _, p := range out.DegradedPasses {
		if p == "constfold" {
			found = true
		}
	}
	if !found {
		t.Errorf("degradedPasses = %v, want to contain constfold", out.DegradedPasses)
	}
	if out.IR == "" {
		t.Error("degraded compile returned no IR")
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	text := string(raw)
	if !strings.Contains(text, "rolagd_degraded_total 1") {
		t.Error("metrics missing rolagd_degraded_total 1")
	}
	if !strings.Contains(text, `rolagd_pass_skipped_total{pass="constfold"} 1`) {
		t.Error("metrics missing rolagd_pass_skipped_total for constfold")
	}
}

// TestShedding429 saturates a MaxInFlight=1 daemon with a stalled
// compile and checks the next request is shed with 429 + Retry-After.
func TestShedding429(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	d, srv := newTestDaemon(t, service.Config{
		Workers: 1, QueueDepth: 1, MaxInFlight: 1, CacheEntries: -1,
	}, 10*time.Second)

	faultpoint.Enable(faultpoint.Options{Seed: 1, Prob: 0, Stall: 800 * time.Millisecond})
	faultpoint.Arm(faultpoint.EngineRun, faultpoint.KindStall, 1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, _ := json.Marshal(map[string]any{"source": testSrc})
		resp, err := http.Post(srv.URL+"/v1/compile", "application/json", strings.NewReader(string(body)))
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait for the stalled request to occupy the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for d.engine.Metrics().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	body, _ := json.Marshal(map[string]any{"source": "void g() {}"})
	resp, err := http.Post(srv.URL+"/v1/compile", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 reply missing Retry-After")
	}
	wg.Wait()

	if shed := d.engine.Metrics().Shed; shed != 1 {
		t.Errorf("shed counter = %d, want 1", shed)
	}
}

// TestReadyzDrainOnSIGTERM replicates main's signal wiring: on SIGTERM
// /readyz flips to 503 while /healthz stays 200 until the process
// exits.
func TestReadyzDrainOnSIGTERM(t *testing.T) {
	d, srv := newTestDaemon(t, service.Config{}, 10*time.Second)

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before drain: %d, want 200", got)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never delivered")
	}
	d.BeginDrain()

	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during drain: %d, want 200", got)
	}
}

// TestReadyzBreakerDark opens the rolag breaker with injected failures
// and checks readiness goes dark while liveness stays up.
func TestReadyzBreakerDark(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	d, srv := newTestDaemon(t, service.Config{
		Workers: 1, BreakerThreshold: 1, CacheEntries: -1,
	}, 10*time.Second)

	faultpoint.Arm("pass:rolag", faultpoint.KindError, 1)
	body, _ := json.Marshal(map[string]any{"source": testSrc})
	resp, out := postCompile(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !out.Degraded {
		t.Fatal("injected rolag failure not reported as degraded")
	}
	if !d.engine.Dark() {
		t.Fatal("engine not breaker-dark after threshold-1 rolag failure")
	}

	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while breaker-dark: %d, want 503", rresp.StatusCode)
	}
	var ready struct {
		Status   string                `json:"status"`
		Breakers []service.BreakerInfo `json:"breakers"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "breaker-dark" {
		t.Errorf("readyz status %q, want breaker-dark", ready.Status)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while breaker-dark: %d, want 200", hresp.StatusCode)
	}
}

// TestRequestTimeout bounds a stalled compile with the body's timeoutMs
// and expects 504.
func TestRequestTimeout(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	_, srv := newTestDaemon(t, service.Config{Workers: 1, CacheEntries: -1}, 10*time.Second)

	faultpoint.Enable(faultpoint.Options{Seed: 1, Prob: 0, Stall: 500 * time.Millisecond})
	faultpoint.Arm(faultpoint.EngineRun, faultpoint.KindStall, 1)

	body := fmt.Sprintf(`{"source":%q,"timeoutMs":50}`, testSrc)
	resp, _ := postCompile(t, srv, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestEffectiveTimeout(t *testing.T) {
	cases := []struct {
		requestMs int
		cap, want time.Duration
	}{
		{0, 30 * time.Second, 30 * time.Second},       // no request value → cap
		{0, 0, 0},                                     // nothing set → no deadline
		{50, 30 * time.Second, 50 * time.Millisecond}, // request below cap
		{60_000, 30 * time.Second, 30 * time.Second},  // clamped to cap
		{60_000, 0, 60_000 * time.Millisecond},        // no cap → as given
		{-5, 10 * time.Second, 10 * time.Second},      // negative ignored
	}
	for _, c := range cases {
		if got := effectiveTimeout(c.requestMs, c.cap); got != c.want {
			t.Errorf("effectiveTimeout(%d, %v) = %v, want %v", c.requestMs, c.cap, got, c.want)
		}
	}
}
