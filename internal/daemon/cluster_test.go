package daemon

// Tests for the cluster surface of the daemon: the peer cache export
// endpoint, fetch-on-miss peer caching between two shards, the batch
// endpoint's parity with serial compiles, and /v1/cachestats.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// testCluster spawns n in-process shards that know each other as
// peers, returning the daemons and their base URLs by shard name.
func testCluster(t *testing.T, n int) ([]*Daemon, map[string]string) {
	t.Helper()
	// Membership (name → URL) must exist before the daemons, so
	// allocate the listeners first and start the servers against
	// placeholder handlers that delegate once the daemon exists.
	daemons := make([]*Daemon, n)
	peers := make(map[string]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			daemons[i].Handler().ServeHTTP(w, r)
		}))
		t.Cleanup(servers[i].Close)
		peers[shardName(i)] = servers[i].URL
	}
	for i := 0; i < n; i++ {
		d := New(Config{
			Engine:     service.Config{Workers: 2},
			RequestCap: 10 * time.Second,
			ShardID:    shardName(i),
			Peers:      peers,
		})
		t.Cleanup(func() { d.Close(context.Background()) })
		daemons[i] = d
	}
	return daemons, peers
}

func shardName(i int) string { return fmt.Sprintf("shard-%c", 'a'+i) }

func TestCacheExportEndpoint(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 10*time.Second)

	resp, err := http.Get(srv.URL + "/v1/cache/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncached key: status %d, want 404", resp.StatusCode)
	}

	// Compile once, then export by the response's cache key.
	cr := rolagdapi.CompileRequest{Source: testSrc}
	sreq, err := cr.ToService()
	if err != nil {
		t.Fatal(err)
	}
	key := service.Key(&sreq)
	body, _ := json.Marshal(cr)
	if resp, _ := postCompile(t, srv, string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	eresp, err := http.Get(srv.URL + "/v1/cache/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("cached key: status %d, want 200", eresp.StatusCode)
	}
	var ce service.CacheEntry
	if err := json.NewDecoder(eresp.Body).Decode(&ce); err != nil {
		t.Fatal(err)
	}
	if ce.IR == "" || ce.BinaryAfter == 0 {
		t.Fatalf("exported entry incomplete: %+v", ce)
	}
}

// TestPeerCacheFetchOnMiss is the coherence core: a key compiled on
// its home shard is served byte-identically by every other shard via
// one peer fetch, with the hit/miss counters advancing on the right
// side.
func TestPeerCacheFetchOnMiss(t *testing.T) {
	daemons, peers := testCluster(t, 2)

	// Find a source whose key is homed on shard 0 so the test is
	// deterministic about who compiles and who peer-fetches.
	var cr rolagdapi.CompileRequest
	var key string
	for i := 0; ; i++ {
		cr = rolagdapi.CompileRequest{Source: fmt.Sprintf(
			"void f%d(int *a) {\n  a[0] = a[0] + 1;\n  a[1] = a[1] + 1;\n  a[2] = a[2] + 1;\n  a[3] = a[3] + 1;\n}", i)}
		sreq, err := cr.ToService()
		if err != nil {
			t.Fatal(err)
		}
		key = service.Key(&sreq)
		if daemons[0].ring.Owner(key) == daemons[0].shardID {
			break
		}
	}

	body, _ := json.Marshal(cr)
	post := func(url string) rolagdapi.CompileResponse {
		t.Helper()
		resp, err := http.Post(url+"/v1/compile", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var out rolagdapi.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	home := post(peers[shardName(0)])
	if home.CacheHit {
		t.Fatal("first compile on the home shard reported a cache hit")
	}
	// The other shard misses locally, fetches from the home shard, and
	// must neither compile nor differ by a byte.
	other := post(peers[shardName(1)])
	if !other.CacheHit {
		t.Error("peer-fetched result not reported as a cache hit")
	}
	if other.IR != home.IR || other.BinaryAfter != home.BinaryAfter {
		t.Error("peer-fetched result differs from the home shard's")
	}
	m := daemons[1].Engine().Metrics()
	if m.PeerHits != 1 {
		t.Errorf("shard-b peer hits = %d, want 1", m.PeerHits)
	}
	if m.Compiles != 0 {
		t.Errorf("shard-b compiled %d times, want 0 (peer cache should have answered)", m.Compiles)
	}
	// The entry is now in shard-b's local cache: a repeat request must
	// not fetch again.
	post(peers[shardName(1)])
	if m := daemons[1].Engine().Metrics(); m.PeerHits != 1 {
		t.Errorf("repeat request peer-fetched again: peer hits = %d", m.PeerHits)
	}

	// A key homed here but never compiled: peer fetch must not even be
	// attempted (the miss is ours to compile).
	m0 := daemons[0].Engine().Metrics()
	if m0.PeerHits+m0.PeerMisses != 0 {
		t.Errorf("home shard consulted a peer for its own key: %+v", m0)
	}
}

// TestPeerCacheMissCompilesLocally pins the degrade path: when the
// home shard doesn't have the key either, the fetching shard counts a
// peer miss and compiles locally.
func TestPeerCacheMissCompilesLocally(t *testing.T) {
	daemons, peers := testCluster(t, 2)

	var cr rolagdapi.CompileRequest
	for i := 0; ; i++ {
		cr = rolagdapi.CompileRequest{Source: fmt.Sprintf("void g%d() {}", i)}
		sreq, err := cr.ToService()
		if err != nil {
			t.Fatal(err)
		}
		if daemons[0].ring.Owner(service.Key(&sreq)) == shardName(0) {
			break
		}
	}
	body, _ := json.Marshal(cr)
	resp, err := http.Post(peers[shardName(1)]+"/v1/compile", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	m := daemons[1].Engine().Metrics()
	if m.PeerMisses != 1 || m.PeerHits != 0 {
		t.Errorf("peer counters = hits %d misses %d, want 0/1", m.PeerHits, m.PeerMisses)
	}
	if m.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (local compile after peer miss)", m.Compiles)
	}
}

// TestBatchEndpointParity: a batch of K functions equals K serial
// compiles byte-for-byte — IR, sizes, and remark streams.
func TestBatchEndpointParity(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 10*time.Second)

	var items []rolagdapi.CompileRequest
	for i := 0; i < 6; i++ {
		items = append(items, rolagdapi.CompileRequest{
			Source: fmt.Sprintf(
				"void f%d(int *a) {\n  a[0] = a[0] + %d;\n  a[1] = a[1] + %d;\n  a[2] = a[2] + %d;\n  a[3] = a[3] + %d;\n}",
				i, i+1, i+1, i+1, i+1),
			Remarks: true,
		})
	}

	// Serial reference, against a fresh daemon so nothing is cached.
	_, refSrv := newTestDaemon(t, service.Config{}, 10*time.Second)
	var want []rolagdapi.CompileResponse
	for _, it := range items {
		b, _ := json.Marshal(it)
		resp, out := postCompile(t, refSrv, string(b))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("serial reference: status %d", resp.StatusCode)
		}
		want = append(want, out)
	}

	bb, _ := json.Marshal(rolagdapi.BatchRequest{Items: items})
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(string(bb)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	var out rolagdapi.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != len(items) {
		t.Fatalf("batch returned %d items, want %d", len(out.Items), len(items))
	}
	for i, item := range out.Items {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if item.IR != want[i].IR {
			t.Errorf("item %d IR differs from serial compile", i)
		}
		if item.BinaryAfter != want[i].BinaryAfter || item.LoopsRolled != want[i].LoopsRolled {
			t.Errorf("item %d sizes differ: batch %d/%d, serial %d/%d",
				i, item.BinaryAfter, item.LoopsRolled, want[i].BinaryAfter, want[i].LoopsRolled)
		}
		if len(item.Remarks) != len(want[i].Remarks) {
			t.Errorf("item %d remark count differs: %d vs %d", i, len(item.Remarks), len(want[i].Remarks))
		}
		if item.Degraded != want[i].Degraded {
			t.Errorf("item %d degraded flag differs", i)
		}
	}
}

func TestBatchEndpointPerItemErrors(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 10*time.Second)
	bb, _ := json.Marshal(rolagdapi.BatchRequest{Items: []rolagdapi.CompileRequest{
		{Source: "void ok() {}"},
		{Source: "int broken( {"},
		{Source: "void ok2() {}", Config: rolagdapi.CompileConfig{Opt: "wat"}},
	}})
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(string(bb)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out rolagdapi.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Error != "" || out.Items[0].IR == "" {
		t.Errorf("good item failed: %+v", out.Items[0])
	}
	if out.Items[1].Error == "" {
		t.Error("parse-error item did not report an error")
	}
	if out.Items[2].Error == "" || !strings.Contains(out.Items[2].Error, "unknown opt") {
		t.Errorf("bad-config item error = %q, want unknown opt", out.Items[2].Error)
	}

	// An empty batch is a request error, not an empty success.
	r2, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(`{"items":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", r2.StatusCode)
	}
}

func TestCacheStatsEndpoint(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 10*time.Second)
	body, _ := json.Marshal(map[string]any{"source": testSrc})
	postCompile(t, srv, string(body))
	postCompile(t, srv, string(body))

	resp, err := http.Get(srv.URL + "/v1/cachestats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs rolagdapi.CacheStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	if cs.Requests != 2 || cs.CacheMisses != 1 || cs.CacheHits != 1 || cs.CacheEntries != 1 {
		t.Errorf("cachestats = %+v, want 2 requests, 1 miss, 1 hit, 1 entry", cs)
	}
	if got := cs.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
}

// TestPeerMetricsSeries checks the new Prometheus series are exported.
func TestPeerMetricsSeries(t *testing.T) {
	_, srv := newTestDaemon(t, service.Config{}, 10*time.Second)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rolagd_peer_cache_hit_total", "rolagd_peer_cache_miss_total"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
