module rolag

go 1.22
