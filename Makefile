# Build/test entry points. `make ci` is the tier-1 gate plus the race
# detector over the whole tree, a short differential-fuzzing smoke, and
# the fault-injection chaos smoke; `make bench` regenerates the
# machine-readable service perf record (results/BENCH_service.json).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke chaos-smoke ci bench serve clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short differential-fuzzing run over every native fuzz target; any
# counterexample fails the build and lands in
# internal/fuzzgen/testdata/fuzz/.
fuzz-smoke:
	$(GO) test ./internal/fuzzgen -run '^$$' -fuzz '^FuzzGenerated$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fuzzgen -run '^$$' -fuzz '^FuzzMutated$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fuzzgen -run '^$$' -fuzz '^FuzzSource$$' -fuzztime $(FUZZTIME)

# Fault-injection chaos smoke: the seeded chaos suite under the race
# detector plus a short rolag-fuzz -chaos campaign. Violations of the
# fail-soft contract (crash, verifier failure, equivalence break, or a
# wrong Degraded report) fail the build.
chaos-smoke:
	$(GO) test -race ./internal/fuzzgen -run '^TestChaos' -short -v
	$(GO) run ./cmd/rolag-fuzz -chaos -n 60 -crashers $(or $(TMPDIR),/tmp)/rolag-chaos-crashers

ci: vet build race fuzz-smoke chaos-smoke

bench:
	$(GO) run ./cmd/experiments -run bench

serve:
	$(GO) run ./cmd/rolagd

clean:
	$(GO) clean ./...
