# Build/test entry points. `make ci` is the tier-1 gate plus the race
# detector over the whole tree; `make bench` regenerates the
# machine-readable service perf record (results/BENCH_service.json).

GO ?= go

.PHONY: all build vet test race ci bench serve clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet build race

bench:
	$(GO) run ./cmd/experiments -run bench

serve:
	$(GO) run ./cmd/rolagd

clean:
	$(GO) clean ./...
