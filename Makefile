# Build/test entry points. `make ci` is the tier-1 gate plus the race
# detector over the whole tree, a short differential-fuzzing smoke, the
# fault-injection chaos smoke, the core-optimizer benchmark smoke, the
# assembly-backend smoke, the cost-model calibration gate, the cluster
# smoke (3 shards + router under a zipfian burst), and the cluster
# chaos smoke (faulty links + a shard crash-restarted from its cache
# snapshot mid-burst), and the fleet-telemetry smoke (traced burst
# through the router; every sampled trace must stitch across processes
# and the latency aggregation must be self-consistent); `make bench`
# regenerates the machine-readable service perf record
# (results/BENCH_service.json), `make bench-core` the optimizer one
# (results/BENCH_core.json), `make bench-cluster` the cluster one
# (results/BENCH_cluster.json), `make bench-chaos` the survivability
# one (results/BENCH_chaos.json), and `make bench-fleet` the
# fleet-telemetry one (results/BENCH_fleet.json).

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke chaos-smoke bench-smoke explain-smoke asm-smoke calib-check cluster-smoke chaos-cluster-smoke fleet-smoke ci calib bench bench-core bench-cluster bench-chaos bench-fleet serve clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short differential-fuzzing run over every native fuzz target; any
# counterexample fails the build and lands in
# internal/fuzzgen/testdata/fuzz/.
fuzz-smoke:
	$(GO) test ./internal/fuzzgen -run '^$$' -fuzz '^FuzzGenerated$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fuzzgen -run '^$$' -fuzz '^FuzzMutated$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fuzzgen -run '^$$' -fuzz '^FuzzSource$$' -fuzztime $(FUZZTIME)

# Fault-injection chaos smoke: the seeded chaos suite under the race
# detector plus a short rolag-fuzz -chaos campaign. Violations of the
# fail-soft contract (crash, verifier failure, equivalence break, or a
# wrong Degraded report) fail the build.
chaos-smoke:
	$(GO) test -race ./internal/fuzzgen -run '^TestChaos' -short -v
	$(GO) run ./cmd/rolag-fuzz -chaos -n 60 -crashers $(or $(TMPDIR),/tmp)/rolag-chaos-crashers

# Observability smoke: run rolagc -remarks=json over every example C
# program and validate each stream against the committed remark schema
# (internal/obs/schematest/remarks.schema.json). A remark-format change
# that breaks the schema contract fails here before it reaches users.
explain-smoke:
	$(GO) build -o $(or $(TMPDIR),/tmp)/rolagc-smoke ./cmd/rolagc
	@set -e; for f in examples/c/*.c; do \
		echo "explain-smoke: $$f"; \
		$(or $(TMPDIR),/tmp)/rolagc-smoke -remarks json $$f 2>/dev/null \
			| $(GO) run ./internal/obs/schematest/remarklint; \
	done

# Assembly-backend smoke: compile every example straight-line and
# rolled through `rolagc -emit asm`, require nonzero measured .text
# bytes, and require the measured size delta to agree in sign with the
# binary cost model's claimed direction (the calibration gate's sign
# contract, re-checked on the real examples).
asm-smoke:
	$(GO) build -o $(or $(TMPDIR),/tmp)/rolagc-smoke ./cmd/rolagc
	@set -e; for f in examples/c/*.c; do \
		echo "asm-smoke: $$f"; \
		none=$$($(or $(TMPDIR),/tmp)/rolagc-smoke -opt none -emit asm $$f 2>&1 >/dev/null); \
		roll=$$($(or $(TMPDIR),/tmp)/rolagc-smoke -opt rolag -emit asm $$f 2>&1 >/dev/null); \
		mn=$$(printf '%s\n' "$$none" | sed -n 's/^text: \([0-9]*\) bytes.*/\1/p'); \
		mr=$$(printf '%s\n' "$$roll" | sed -n 's/^text: \([0-9]*\) bytes.*/\1/p'); \
		est=$$(printf '%s\n' "$$roll" | sed -n 's/^size: \([0-9]*\) -> \([0-9]*\) bytes.*/\1 \2/p'); \
		echo "$$mn $$mr $$est" | awk -v f=$$f '{ \
			if (NF != 4) { printf "asm-smoke: %s: missing measurements (%s)\n", f, $$0; exit 1 } \
			if ($$1 <= 0 || $$2 <= 0) { printf "asm-smoke: %s: empty .text\n", f; exit 1 } \
			md = $$2 - $$1; ed = $$4 - $$3; \
			ms = (md > 0) - (md < 0); es = (ed > 0) - (ed < 0); \
			if (ms != es) { printf "asm-smoke: %s: measured %+d bytes but model claims %+d\n", f, md, ed; exit 1 } \
		}'; \
	done

# Cost-model calibration gate: compile a 200-function corpus both
# straight-line and rolled through the assembly backend, and fail if
# the binary cost model drifts past its error gates (MAPE > 15% or
# rolled-vs-straight sign agreement < 95%). The report goes to a
# scratch dir; `make calib` regenerates the committed
# results/CALIB_costmodel.json from the full 400-function corpus.
calib-check:
	$(GO) run ./cmd/experiments -run calib -check -calibn 200 \
		-out $(or $(TMPDIR),/tmp)/rolag-calib-check

calib:
	$(GO) run ./cmd/experiments -run calib -check

# One-iteration core benchmark gated against the committed baseline:
# fails if the output JSON is malformed (the gate parses it) or if
# ns-per-function regresses by more than 2x. The comparison is
# normalized per corpus function, so the small smoke corpus is
# comparable to the full committed baseline.
bench-smoke:
	$(GO) run ./cmd/rolag-bench -n 120 -iters 1 \
		-out $(or $(TMPDIR),/tmp)/rolag-bench-smoke.json \
		-check results/BENCH_core.json -max-slowdown 2

# Cluster smoke: spawn a local 3-shard cluster plus router and push a
# 500-request zipfian burst through it (a quarter of it shard-direct, so
# the fetch-on-miss peer cache tier is exercised). Fails on any byte
# difference from the serial reference, on zero peer-cache hits, or on a
# >5x p99/throughput regression vs the committed cluster baseline.
cluster-smoke:
	$(GO) run ./cmd/rolag-loadgen -shards 3 -requests 500 -n 120 -rate 400 \
		-require-peer-hits \
		-out $(or $(TMPDIR),/tmp)/rolag-cluster-smoke.json \
		-check results/BENCH_cluster.json -max-slowdown 5

# Cluster chaos smoke: the same local cluster with every router→shard
# link running through armed fault injection (stall/refuse/blackhole)
# and the shard owning the hottest key crashed un-drained mid-burst,
# then restarted from its periodic cache snapshot. Gates: byte parity
# on 100% of successful responses, availability >= 99%, and the
# restarted shard serving snapshot-warm hits.
chaos-cluster-smoke:
	$(GO) run ./cmd/rolag-loadgen -chaos -shards 3 -requests 400 -n 120 \
		-rate 200 -timeout 8s \
		-out $(or $(TMPDIR),/tmp)/rolag-chaos-cluster-smoke.json

# Fleet-telemetry smoke: boot the local 3-shard cluster + router with
# tracing on and one span ring per process, push a traced burst through
# the router, and gate the telemetry plane's SLOs — every sampled
# request must yield a fully-stitched multi-process trace from
# GET /debug/trace/{id} (completeness >= 99%), and the router-observed
# /v1/compile p99 must agree with the fleet-merged shard-reported p99.
fleet-smoke:
	$(GO) run ./cmd/rolag-loadgen -fleet -shards 3 -requests 300 -n 120 -rate 400 \
		-out $(or $(TMPDIR),/tmp)/rolag-fleet-smoke.json

ci: vet build race fuzz-smoke chaos-smoke bench-smoke explain-smoke asm-smoke calib-check cluster-smoke chaos-cluster-smoke fleet-smoke

bench:
	$(GO) run ./cmd/experiments -run bench

# Full core-optimizer benchmark; regenerates the committed baseline.
bench-core:
	$(GO) run ./cmd/rolag-bench -n 300 -iters 5 -out results/BENCH_core.json

# Full cluster benchmark; regenerates the committed baseline.
bench-cluster:
	$(GO) run ./cmd/rolag-loadgen -out results/BENCH_cluster.json

# Full chaos run; regenerates the committed survivability record.
bench-chaos:
	$(GO) run ./cmd/rolag-loadgen -chaos -timeout 8s -out results/BENCH_chaos.json

# Full fleet-telemetry run; regenerates the committed record.
bench-fleet:
	$(GO) run ./cmd/rolag-loadgen -fleet -out results/BENCH_fleet.json

serve:
	$(GO) run ./cmd/rolagd

clean:
	$(GO) clean ./...
