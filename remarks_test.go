package rolag_test

// Determinism contract of Config.Remarks: the remark stream must be
// byte-identical across runs and across Parallelism values, because
// remarks travel through the service cache and into committed
// experiment artifacts — any run-varying byte would poison both.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rolag"
	"rolag/internal/obs"
	"rolag/internal/workloads/angha"
)

// remarkStream builds every source under cfg and returns the
// concatenated remark stream serialized with obs.WriteJSON.
func remarkStream(t *testing.T, srcs []string, cfg rolag.Config) []byte {
	t.Helper()
	var all []rolag.Remark
	for i, src := range srcs {
		res, err := rolag.Build(src, cfg)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		all = append(all, res.Remarks...)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSON(&buf, all); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loopSource synthesizes nf functions with countable for-loops, the
// shape the unroll-then-reroll pipeline needs: the corpus and
// multiFuncSource are straight-line code, on which Config.Unroll is a
// no-op and the reroll pass has nothing to remark about.
func loopSource(nf int) string {
	var b strings.Builder
	for i := 0; i < nf; i++ {
		fmt.Fprintf(&b, "int lf%d(int *a) {\n\tint s = 0;\n\tfor (int i = 0; i < %d; i++) s += a[i];\n\treturn s;\n}\n",
			i, 16+4*i)
	}
	return b.String()
}

// TestRemarksDeterministic: two independent runs over 50 corpus
// functions must serialize to byte-identical JSON. The corpus is big
// enough to hit every remark kind (rolled, not-profitable, seed,
// align-node, reroll on the reroll config below), so a timestamp,
// pointer, or map-iteration leak anywhere in the emission path fails
// here rather than in a flaky diff downstream.
func TestRemarksDeterministic(t *testing.T) {
	srcs := make([]string, 0, 51)
	for _, fn := range angha.Generate(50, 20220402) {
		srcs = append(srcs, fn.Src)
	}
	srcs = append(srcs, loopSource(6))
	for _, tc := range []struct {
		name string
		cfg  rolag.Config
	}{
		{"rolag", rolag.Config{Opt: rolag.OptRoLAG, Remarks: true}},
		{"rolag-failsoft", rolag.Config{Opt: rolag.OptRoLAG, Remarks: true, FailSoft: true}},
		{"reroll-unroll4", rolag.Config{Opt: rolag.OptLLVMReroll, Unroll: 4, Remarks: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := remarkStream(t, srcs, tc.cfg)
			b := remarkStream(t, srcs, tc.cfg)
			if !bytes.Equal(a, b) {
				t.Errorf("remark streams differ between runs\n--- first ---\n%s\n--- second ---\n%s", a, b)
			}
			// Guard against a vacuous pass: the corpus must actually
			// produce remarks, including at least one applied
			// transformation of the technique under test.
			if bytes.Equal(a, []byte("[]\n")) {
				t.Fatal("corpus produced no remarks; the test is measuring nothing")
			}
			passedName := `"name": "rolled"`
			if tc.cfg.Opt == rolag.OptLLVMReroll {
				passedName = `"name": "rerolled"`
			}
			if !bytes.Contains(a, []byte(passedName)) {
				t.Errorf("no %s remark across the corpus; corpus or emitter drifted", passedName)
			}
		})
	}
}

// TestRemarksParallelMatchesSerial: per-function collectors merged in
// function order must make the parallel remark stream byte-identical to
// the serial one, for the plain and the fail-soft pipeline alike. Uses
// the multi-function translation unit from the parallelism tests so
// several workers genuinely race on one module.
func TestRemarksParallelMatchesSerial(t *testing.T) {
	src := multiFuncSource(41, 16) + loopSource(5)
	for _, tc := range []struct {
		name string
		cfg  rolag.Config
	}{
		{"rolag", rolag.Config{Opt: rolag.OptRoLAG, Remarks: true}},
		{"rolag-failsoft", rolag.Config{Opt: rolag.OptRoLAG, Remarks: true, FailSoft: true}},
		{"reroll-unroll4", rolag.Config{Opt: rolag.OptLLVMReroll, Unroll: 4, Remarks: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.cfg
			serial.Parallelism = 1
			sres, err := rolag.Build(src, serial)
			if err != nil {
				t.Fatal(err)
			}
			if len(sres.Remarks) == 0 {
				t.Fatal("serial run produced no remarks; the comparison is vacuous")
			}
			for _, par := range []int{8, -1} {
				pcfg := tc.cfg
				pcfg.Parallelism = par
				pres, err := rolag.Build(src, pcfg)
				if err != nil {
					t.Fatal(err)
				}
				var sb, pb bytes.Buffer
				if err := obs.WriteJSON(&sb, sres.Remarks); err != nil {
					t.Fatal(err)
				}
				if err := obs.WriteJSON(&pb, pres.Remarks); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Errorf("Parallelism %d remark stream differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
						par, sb.Bytes(), pb.Bytes())
				}
			}
		})
	}
}

// TestRemarksExplainNamesRejection pins the acceptance criterion of the
// observability work: a function the optimizer declines to roll must
// yield a missed remark with a concrete machine-readable reason and
// instruction-level provenance, and obs.Explain must surface it.
func TestRemarksExplainNamesRejection(t *testing.T) {
	// Four structurally different stores (the examples/c/irregular.c
	// shape): seeds group on the consecutive addresses, but the lanes
	// disagree structurally, so the roll degrades to mismatch nodes and
	// the cost model rejects it as not profitable.
	src := `void irregular(int *a, int x, int y) {
	a[0] = x * 5;
	a[1] = x + y;
	a[2] = y ^ 12;
	a[3] = x - 7;
}
`
	res, err := rolag.Build(src, rolag.Config{Opt: rolag.OptRoLAG, Remarks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.LoopsRolled != 0 {
		t.Fatalf("test premise broken: function rolled (stats: %+v)", res.Stats)
	}
	var miss *rolag.Remark
	for i := range res.Remarks {
		if res.Remarks[i].Status == obs.StatusMissed {
			miss = &res.Remarks[i]
			break
		}
	}
	if miss == nil {
		t.Fatalf("no missed remark for a rejected roll; remarks: %+v", res.Remarks)
	}
	if miss.Reason == "" {
		t.Errorf("missed remark has no machine-readable reason: %+v", *miss)
	}
	if miss.Instr == "" {
		t.Errorf("missed remark has no instruction provenance: %+v", *miss)
	}
	var buf bytes.Buffer
	obs.Explain(&buf, res.Remarks, "irregular")
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("MISSED")) {
		t.Errorf("Explain output names no MISSED decision:\n%s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte(miss.Reason)) {
		t.Errorf("Explain output omits the rejection reason %q:\n%s", miss.Reason, out)
	}
}
