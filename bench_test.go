package rolag_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus ablation and optimizer-throughput benchmarks.
// Each experiment benchmark runs a scaled-down configuration per
// iteration and reports the headline numbers the paper quotes as custom
// metrics (so `go test -bench` regenerates the comparable series);
// cmd/experiments runs the full-scale versions and writes the CSVs.

import (
	"testing"

	"rolag"
	"rolag/internal/experiments"
	rl "rolag/internal/rolag"
)

// BenchmarkFig15Angha regenerates the AnghaBench reduction curve
// (Fig. 15): mean and best per-function reduction over affected
// functions, plus the affected/regression counts.
func BenchmarkFig15Angha(b *testing.B) {
	var s *experiments.AnghaSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunAngha(experiments.AnghaConfig{N: 300})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MeanReduction, "meanRed%")
	b.ReportMetric(s.BestReduction, "bestRed%")
	b.ReportMetric(float64(len(s.Affected)), "affected")
	b.ReportMetric(float64(s.Regressions), "regressions")
	b.ReportMetric(float64(s.AffectedLLVM), "llvmAffected")
}

// BenchmarkFig16NodeBreakdownAngha regenerates the AnghaBench node-kind
// breakdown (Fig. 16).
func BenchmarkFig16NodeBreakdownAngha(b *testing.B) {
	var s *experiments.AnghaSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunAngha(experiments.AnghaConfig{N: 300})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.NodeCounts[rl.KindMatch]), "match")
	b.ReportMetric(float64(s.NodeCounts[rl.KindIdentical]), "identical")
	b.ReportMetric(float64(s.NodeCounts[rl.KindIntSeq]), "sequence")
	b.ReportMetric(float64(s.NodeCounts[rl.KindMismatch]), "mismatch")
	b.ReportMetric(float64(s.NodeCounts[rl.KindRecurrence]), "recurrence")
	b.ReportMetric(float64(s.NodeCounts[rl.KindReduction]), "reduction")
	b.ReportMetric(float64(s.NodeCounts[rl.KindJoint]), "joint")
}

// BenchmarkTable1Programs regenerates the MiBench/SPEC program table
// (Table I) at reduced scale and reports the suite-level aggregates.
func BenchmarkTable1Programs(b *testing.B) {
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable1Scaled(0.12)
		if err != nil {
			b.Fatal(err)
		}
	}
	totalRedKB, rolled, neg := 0.0, 0, 0
	for _, r := range rows {
		totalRedKB += r.ReductionKB
		rolled += r.RolledLoops
		if r.ReductionPct < 0 {
			neg++
		}
	}
	b.ReportMetric(totalRedKB, "totalRedKB")
	b.ReportMetric(float64(rolled), "rolledLoops")
	b.ReportMetric(float64(neg), "regressingPrograms")
}

// tsvcBenchKernels is a representative slice of the suite for per-
// iteration benchmarking (the full suite runs in cmd/experiments).
var tsvcBenchKernels = []string{
	"s000", "s111", "s1111", "s112", "s121", "s1221", "s127", "s173",
	"s251", "s311", "s312", "s313", "s319", "s351", "s352", "s421",
	"s452", "s453", "s491", "s4112", "va", "vpv", "vtv", "vpvtv",
	"vsumr", "vdotr", "vbor", "s271", "s3113", "s322",
}

// BenchmarkFig17TSVC regenerates the TSVC comparison (Fig. 17): mean
// reductions and affected-kernel counts for the baseline and RoLAG.
func BenchmarkFig17TSVC(b *testing.B) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.Kernels = tsvcBenchKernels
	var s *experiments.TSVCSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunTSVC(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MeanLLVM, "meanLLVM%")
	b.ReportMetric(s.MeanRoLAG, "meanRoLAG%")
	b.ReportMetric(float64(s.AffectedLLVM), "llvmKernels")
	b.ReportMetric(float64(s.AffectedRoLAG), "rolagKernels")
}

// BenchmarkFig18Oracle regenerates the oracle-vs-RoLAG comparison
// (Fig. 18).
func BenchmarkFig18Oracle(b *testing.B) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.Kernels = tsvcBenchKernels
	var s *experiments.TSVCSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunTSVC(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MeanOracle, "meanOracle%")
	b.ReportMetric(s.MeanRoLAG, "meanRoLAG%")
}

// BenchmarkFig19NodeBreakdownTSVC regenerates the TSVC node breakdown and
// the special-nodes ablation (Fig. 19).
func BenchmarkFig19NodeBreakdownTSVC(b *testing.B) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.Kernels = tsvcBenchKernels
	var s *experiments.TSVCSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunTSVC(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.NodeCounts[rl.KindMatch]), "match")
	b.ReportMetric(float64(s.NodeCounts[rl.KindIntSeq]), "sequence")
	b.ReportMetric(float64(s.NodeCounts[rl.KindReduction]), "reduction")
	b.ReportMetric(float64(s.AffectedRoLAG), "fullKernels")
	b.ReportMetric(float64(s.AffectedNoSpecial), "noSpecialKernels")
}

// BenchmarkPerfOverheadTSVC regenerates the §V.D runtime overhead: the
// mean relative performance of rolled code under the interpreter.
func BenchmarkPerfOverheadTSVC(b *testing.B) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.Kernels = tsvcBenchKernels
	cfg.MeasurePerf = true
	var s *experiments.TSVCSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunTSVC(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.RelPerf, "relPerf")
}

// BenchmarkAblationSpecialNodes compares the full technique against the
// no-special-nodes configuration on a straight-line corpus — the design
// choice Fig. 19 isolates.
func BenchmarkAblationSpecialNodes(b *testing.B) {
	srcs := []string{
		`extern void cb(char *p, char *q);
		 struct S { char v[64]; };
		 void f(struct S *s, void *p) {
			cb(p, s->v); cb(p + 16, s->v + 16); cb(p + 32, s->v + 32); cb(p + 48, s->v + 48);
		 }`,
		`int g(const int *a, const int *b) {
			return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] + a[4]*b[4];
		 }`,
		`void h(int *a, int v) {
			a[0] = v*3; a[1] = v*5; a[2] = v*7; a[3] = v*9; a[4] = v*11;
		 }`,
	}
	run := func(opts *rolag.Options) int {
		rolled := 0
		for _, src := range srcs {
			res, err := rolag.Build(src, rolag.Config{Opt: rolag.OptRoLAG, Options: opts})
			if err != nil {
				b.Fatal(err)
			}
			rolled += res.Stats.LoopsRolled
		}
		return rolled
	}
	var full, noSpecial int
	for i := 0; i < b.N; i++ {
		full = run(rolag.DefaultOptions())
		noSpecial = run(rolag.NoSpecialNodes())
	}
	b.ReportMetric(float64(full), "rolledFull")
	b.ReportMetric(float64(noSpecial), "rolledNoSpecial")
}

// BenchmarkAblationFlatten measures the §V.C improvement the paper
// proposes (flattening RoLAG's nested rerolled loops): suite-mean
// reductions for RoLAG alone vs RoLAG + flatten on the bench kernel set.
func BenchmarkAblationFlatten(b *testing.B) {
	cfg := experiments.DefaultTSVCConfig()
	cfg.Kernels = tsvcBenchKernels
	var s *experiments.TSVCSummary
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.RunTSVC(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.MeanRoLAG, "meanRoLAG%")
	b.ReportMetric(s.MeanFlat, "meanFlat%")
	b.ReportMetric(s.MeanLLVM, "meanLLVM%")
}

// BenchmarkOptimizerThroughput measures RoLAG's own compile-time cost on
// a mid-sized function (not a paper figure; engineering health metric).
func BenchmarkOptimizerThroughput(b *testing.B) {
	src := `
void f(int *a, int *s, int v) {
	a[0] = s[8] + v; a[1] = s[9] + v; a[2] = s[10] + v; a[3] = s[11] + v;
	a[4] = s[12] + v; a[5] = s[13] + v; a[6] = s[14] + v; a[7] = s[15] + v;
}`
	m, err := rolag.Compile(src, "bench")
	if err != nil {
		b.Fatal(err)
	}
	_ = m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rolag.Build(src, rolag.Config{Opt: rolag.OptRoLAG}); err != nil {
			b.Fatal(err)
		}
	}
}
