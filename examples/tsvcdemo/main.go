// The tsvcdemo example walks through the paper's §V.C methodology on a
// single TSVC kernel: take the rolled source (the oracle), force-unroll
// its inner loop by 8 (the experiment's input), then recover the loop
// with both techniques and compare the sizes — LLVM's rerolling reuses
// the original loop, while RoLAG creates a new inner loop.
package main

import (
	"fmt"
	"log"

	"rolag"
	"rolag/internal/workloads/tsvc"
)

func main() {
	kernel := tsvc.Find("s000")
	if kernel == nil {
		log.Fatal("kernel s000 not found")
	}

	oracle, err := rolag.Build(kernel.Src, rolag.Config{Name: "oracle", Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	base, err := rolag.Build(kernel.Src, rolag.Config{Name: "base", Unroll: 8, Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	llvm, err := rolag.Build(kernel.Src, rolag.Config{Name: "llvm", Unroll: 8, Opt: rolag.OptLLVMReroll})
	if err != nil {
		log.Fatal(err)
	}
	rg, err := rolag.Build(kernel.Src, rolag.Config{Name: "rolag", Unroll: 8, Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}

	pct := func(after int) float64 {
		return 100 * float64(base.BinaryAfter-after) / float64(base.BinaryAfter)
	}
	fmt.Printf("kernel %s (a[i] = b[i] + 1)\n\n", kernel.Name)
	fmt.Printf("%-28s %6d bytes\n", "rolled source (oracle):", oracle.BinaryAfter)
	fmt.Printf("%-28s %6d bytes (the experiment baseline)\n", "unrolled x8:", base.BinaryAfter)
	fmt.Printf("%-28s %6d bytes (%.1f%% reduction, %d loops)\n",
		"LLVM-style rerolling:", llvm.BinaryAfter, pct(llvm.BinaryAfter), llvm.Rerolled)
	fmt.Printf("%-28s %6d bytes (%.1f%% reduction, %d loops)\n",
		"RoLAG:", rg.BinaryAfter, pct(rg.BinaryAfter), rg.Stats.LoopsRolled)

	fmt.Println("\n--- RoLAG output: note the new inner roll.loop inside the original loop ---")
	fmt.Print(rg.Module.FindFunc(kernel.Func))

	for name, m := range map[string]*rolag.Result{"llvm": llvm, "rolag": rg} {
		if err := rolag.CheckEquiv(base.Module, m.Module, kernel.Func, 3); err != nil {
			log.Fatalf("%s changed behaviour: %v", name, err)
		}
	}
	fmt.Println("\ninterpreter check: all versions behave identically")
}
