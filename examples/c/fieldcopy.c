/* A hand-unrolled field copy: eight isomorphic store lanes with affine
 * offsets and strides. RoLAG's seed grouping finds the store sequence,
 * alignment succeeds on every node, and the cost model accepts the
 * roll — `rolagc -explain all examples/c/fieldcopy.c` shows the full
 * passed decision chain. */
void fieldcopy(int *dst, const int *src) {
	dst[0] = src[0] * 3;
	dst[1] = src[1] * 3;
	dst[2] = src[2] * 3;
	dst[3] = src[3] * 3;
	dst[4] = src[4] * 3;
	dst[5] = src[5] * 3;
	dst[6] = src[6] * 3;
	dst[7] = src[7] * 3;
}
