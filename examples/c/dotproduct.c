/* A hand-unrolled dot product: the accumulator makes every lane feed
 * the next, so rolling needs RoLAG's reduction seeds. The remark
 * stream records the reduction seed group and the rolled verdict. */
int dotproduct(const int *a, const int *b) {
	int acc = 0;
	acc = acc + a[0] * b[0];
	acc = acc + a[1] * b[1];
	acc = acc + a[2] * b[2];
	acc = acc + a[3] * b[3];
	acc = acc + a[4] * b[4];
	acc = acc + a[5] * b[5];
	acc = acc + a[6] * b[6];
	acc = acc + a[7] * b[7];
	return acc;
}
