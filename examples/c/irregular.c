/* Stores whose values follow no common shape: the lanes disagree
 * structurally (different operators and operand mixes), so alignment
 * degrades to mismatch nodes and the cost model rejects the roll —
 * `rolagc -explain irregular examples/c/irregular.c` names the
 * rejection and the seed instruction it anchors to. */
void irregular(int *a, int x, int y) {
	a[0] = x * 5;
	a[1] = x + y;
	a[2] = y ^ 12;
	a[3] = x - 7;
}
