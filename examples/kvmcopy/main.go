// The kvmcopy example reproduces the best case of the paper's Fig. 15:
// a function in the style of the Linux KVM's copy_vmcs12_to_enlightened,
// which copies dozens of same-width fields between two differently-named
// structs. RoLAG treats both structs as arrays (the paper's §V.A: "make
// sure that all fields have data types with the same bit size and that
// they can be properly indexed") and converts all the copies into a
// single loop, cutting the function's size by almost 90%.
package main

import (
	"fmt"
	"log"
	"strings"

	"rolag"
)

// makeSource builds the field-copy function with n int fields.
func makeSource(n int) string {
	var b strings.Builder
	b.WriteString("struct vmcs12 {")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " int f%d;", i)
	}
	b.WriteString(" };\n")
	b.WriteString("struct enlightened {")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " int g%d;", i)
	}
	b.WriteString(" };\n")
	b.WriteString("void copy_vmcs12_to_enlightened(struct enlightened *evmcs, struct vmcs12 *vmcs12) {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\tevmcs->g%d = vmcs12->f%d;\n", i, i)
	}
	b.WriteString("}\n")
	return b.String()
}

func main() {
	const fields = 72 // the paper's example copies 72 fields
	src := makeSource(fields)

	orig, err := rolag.Build(src, rolag.Config{Name: "kvm", Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	rolled, err := rolag.Build(src, rolag.Config{Name: "kvm", Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d field copies rolled into:\n\n", fields)
	fmt.Print(rolled.Module.FindFunc("copy_vmcs12_to_enlightened"))
	fmt.Printf("\nestimated object size: %d -> %d bytes (%.1f%% reduction; the paper reports almost 90%%)\n",
		rolled.BinaryBefore, rolled.BinaryAfter, rolled.Reduction())

	if err := rolag.CheckEquiv(orig.Module, rolled.Module, "copy_vmcs12_to_enlightened", 5); err != nil {
		log.Fatalf("behaviour changed: %v", err)
	}
	fmt.Println("interpreter check: all fields copied identically")
}
