// Quickstart: compile a small function, let RoLAG roll its straight-line
// store sequence into a loop, and verify the transformed code behaves
// identically by running both versions in the bundled interpreter.
package main

import (
	"fmt"
	"log"

	"rolag"
)

const src = `
void fill(int *a, int v) {
	a[0] = v * 10;
	a[1] = v * 13;
	a[2] = v * 16;
	a[3] = v * 19;
	a[4] = v * 22;
	a[5] = v * 25;
	a[6] = v * 28;
	a[7] = v * 31;
}
`

func main() {
	// Baseline: no rolling.
	orig, err := rolag.Build(src, rolag.Config{Name: "quickstart", Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	// RoLAG: align the eight stores bottom-up, prove the rearrangement
	// legal, generate the loop, and keep it because it is smaller.
	rolled, err := rolag.Build(src, rolag.Config{Name: "quickstart", Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- original (straight-line) ---")
	fmt.Print(orig.Module)
	fmt.Println("--- after RoLAG ---")
	fmt.Print(rolled.Module)

	fmt.Printf("loops rolled: %d\n", rolled.Stats.LoopsRolled)
	fmt.Printf("estimated object size: %d -> %d bytes (%.1f%% smaller)\n",
		rolled.BinaryBefore, rolled.BinaryAfter, rolled.Reduction())

	// The interpreter is the semantic safety net: run both versions on
	// seeded inputs and compare return values, memory and call traces.
	if err := rolag.CheckEquiv(orig.Module, rolled.Module, "fill", 5); err != nil {
		log.Fatalf("behaviour changed: %v", err)
	}
	fmt.Println("interpreter check: both versions behave identically")
}
