// The dotproduct example reproduces Fig. 11 of the paper: a straight-line
// reduction tree (a[0]*b[0] + a[1]*b[1] + ...) rolled into a loop with an
// accumulator phi. Integer reductions reassociate freely; floating-point
// ones require the fast-math option, just like the paper says.
package main

import (
	"fmt"
	"log"

	"rolag"
)

const intSrc = `
int DotProduct(const int *a, const int *b) {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3]
	     + a[4]*b[4] + a[5]*b[5] + a[6]*b[6] + a[7]*b[7];
}
`

const floatSrc = `
float DotProductF(const float *a, const float *b) {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3]
	     + a[4]*b[4] + a[5]*b[5] + a[6]*b[6] + a[7]*b[7];
}
`

func main() {
	// Integer reduction: rolls out of the box.
	orig, err := rolag.Build(intSrc, rolag.Config{Name: "dot", Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	rolled, err := rolag.Build(intSrc, rolag.Config{Name: "dot", Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- integer dot product after RoLAG (compare with Fig. 11c) ---")
	fmt.Print(rolled.Module.FindFunc("DotProduct"))
	fmt.Printf("\nloops rolled: %d, size %d -> %d bytes\n",
		rolled.Stats.LoopsRolled, rolled.BinaryBefore, rolled.BinaryAfter)
	if err := rolag.CheckEquiv(orig.Module, rolled.Module, "DotProduct", 5); err != nil {
		log.Fatalf("behaviour changed: %v", err)
	}
	fmt.Println("interpreter check: identical results")

	// Floating-point reduction: refused without fast-math (reassociation
	// changes rounding), rolled with it.
	strict, err := rolag.Build(floatSrc, rolag.Config{Name: "dotf", Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}
	opts := rolag.DefaultOptions()
	opts.FastMath = true
	fast, err := rolag.Build(floatSrc, rolag.Config{Name: "dotf", Opt: rolag.OptRoLAG, Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfloat reduction: rolled %d loops without fast-math, %d with fast-math\n",
		strict.Stats.LoopsRolled, fast.Stats.LoopsRolled)
}
