// The aegis128 example reproduces Fig. 3 of the paper: a function from
// the Linux kernel's AEGIS-128 implementation that stores five NEON
// registers with a regular pointer pattern. No production compiler rolls
// it; RoLAG does, via the neutral-pointer rule (gep p, 0 == p) and
// monotonic integer sequence nodes (0..64,16).
package main

import (
	"fmt"
	"log"

	"rolag"
)

const src = `
extern void vst1q_u8(char *p, char *v);
struct aegis128_state { char v[80]; };

void aegis128_save_state_neon(struct aegis128_state *st, void *state) {
	vst1q_u8(state     , st->v     );
	vst1q_u8(state + 16, st->v + 16);
	vst1q_u8(state + 32, st->v + 32);
	vst1q_u8(state + 48, st->v + 48);
	vst1q_u8(state + 64, st->v + 64);
}
`

func main() {
	orig, err := rolag.Build(src, rolag.Config{Name: "aegis128", Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	rolled, err := rolag.Build(src, rolag.Config{Name: "aegis128", Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- after RoLAG (compare with Fig. 3b / Fig. 9 of the paper) ---")
	fmt.Print(rolled.Module.FindFunc("aegis128_save_state_neon"))
	fmt.Printf("\nestimated object size: %d -> %d bytes (%.1f%%; the paper measured ~20%%)\n",
		rolled.BinaryBefore, rolled.BinaryAfter, rolled.Reduction())
	fmt.Printf("node kinds used: %v\n", rolled.Stats.NodeCounts)

	if err := rolag.CheckEquiv(orig.Module, rolled.Module, "aegis128_save_state_neon", 5); err != nil {
		log.Fatalf("behaviour changed: %v", err)
	}
	fmt.Println("interpreter check: identical behaviour (call order, arguments, memory)")
}
