// The hdmichain example reproduces Fig. 4 of the paper: a chain of calls
// from the Linux HDMI driver where each result feeds the next call, and
// consecutive calls read consecutive struct fields in reverse. RoLAG
// rolls the chain with a recurrence node (lowered to a phi) and treats
// the homogeneous struct as an array indexed 5..0,-1 — exactly the
// manual rewrite shown in Fig. 4b.
package main

import (
	"fmt"
	"log"

	"rolag"
)

const src = `
extern int hdmi_read_reg(int *base, int cfg) pure;
extern int FLD_MOD(int r, int v, int hi, int lo) pure;

struct hdmi_audio_format {
	int sample_size; int samples_word; int sample_order;
	int justification; int type; int en_sig_blk;
};

int hdmi_wp_audio_config_format(int *base, struct hdmi_audio_format *fmt) {
	int r = hdmi_read_reg(base, 5);
	r = FLD_MOD(r, fmt->en_sig_blk,    5, 5);
	r = FLD_MOD(r, fmt->type,          4, 4);
	r = FLD_MOD(r, fmt->justification, 3, 3);
	r = FLD_MOD(r, fmt->sample_order,  2, 2);
	r = FLD_MOD(r, fmt->samples_word,  1, 1);
	r = FLD_MOD(r, fmt->sample_size,   0, 0);
	return r;
}
`

func main() {
	orig, err := rolag.Build(src, rolag.Config{Name: "hdmi", Opt: rolag.OptNone})
	if err != nil {
		log.Fatal(err)
	}
	rolled, err := rolag.Build(src, rolag.Config{Name: "hdmi", Opt: rolag.OptRoLAG})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- after RoLAG (compare with Fig. 4b / Fig. 10 of the paper) ---")
	fmt.Print(rolled.Module.FindFunc("hdmi_wp_audio_config_format"))
	fmt.Printf("\nestimated object size: %d -> %d bytes (%.1f%%; the paper measured ~13.6%%)\n",
		rolled.BinaryBefore, rolled.BinaryAfter, rolled.Reduction())
	fmt.Printf("node kinds used: %v\n", rolled.Stats.NodeCounts)

	if err := rolag.CheckEquiv(orig.Module, rolled.Module, "hdmi_wp_audio_config_format", 5); err != nil {
		log.Fatalf("behaviour changed: %v", err)
	}
	fmt.Println("interpreter check: identical behaviour")
}
