// Command rolag-fuzz is the standalone fuzzing driver: it generates
// and mutates mini-C programs, runs each through the differential
// oracle (internal/fuzzgen), and on failure shrinks the program to a
// minimal reproduction (internal/reduce) before writing it to the
// crashers directory.
//
// Typical runs:
//
//	rolag-fuzz -n 2000                    # 2000 generated programs
//	rolag-fuzz -duration 60s -jobs 8      # timed parallel campaign
//	rolag-fuzz -repro crash.c             # re-check + minimize one file
//	rolag-fuzz -chaos -n 200              # fault-injection chaos campaign
//
// The -chaos mode arms every fault point (internal/faultpoint) at
// -chaos-prob probability (or a deterministic -faults spec) and asserts
// the fail-soft contract on each program: no crash, verifier-clean
// output, interpreter equivalence of degraded results, and Degraded
// reported iff a fault fired. Chaos campaigns are single-threaded —
// the fault-point subsystem is process-global.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rolag"
	"rolag/internal/faultpoint"
	"rolag/internal/fuzzgen"
	"rolag/internal/reduce"
)

func main() {
	var (
		n        = flag.Int("n", 0, "number of programs to try (0 = until -duration)")
		duration = flag.Duration("duration", 30*time.Second, "campaign length when -n is 0")
		seed     = flag.Int64("seed", 1, "base generator seed")
		budget   = flag.Int("budget", 48, "max statements per generated program")
		mutate   = flag.Int("mutate", 30, "percent of inputs derived by mutating corpus entries")
		jobs     = flag.Int("jobs", 4, "parallel oracle workers")
		corpus   = flag.String("corpus", "", "directory of interesting programs (read for mutation, written on rolls)")
		crashers = flag.String("crashers", "crashers", "directory minimized failures are written to")
		repro    = flag.String("repro", "", "check and minimize one source file, then exit")
		genOnly  = flag.Bool("gen", false, "print the program for (-seed, -budget) and exit")
		noreduce = flag.Bool("noreduce", false, "write crashers unminimized")
		verbose  = flag.Bool("v", false, "log every failure as it is found")

		chaos       = flag.Bool("chaos", false, "run the fault-injection chaos campaign (single-threaded)")
		chaosProb   = flag.Float64("chaos-prob", 0.10, "per-visit fault probability in -chaos mode")
		chaosStall  = flag.Duration("chaos-stall", fuzzgen.DefaultChaosStall, "injected stall duration in -chaos mode")
		chaosBudget = flag.Duration("chaos-budget", fuzzgen.DefaultChaosBudget, "fail-soft per-pass budget in -chaos mode")
		faults      = flag.String("faults", "", `deterministic fault arms, "site=kind[:count],..." (overrides -chaos-prob at those sites)`)
	)
	flag.Parse()

	if *genOnly {
		fmt.Print(fuzzgen.Generate(*seed, *budget))
		return
	}
	if *repro != "" {
		os.Exit(reproduceFile(*repro, *noreduce))
	}
	if *chaos {
		os.Exit(chaosCampaign(*n, *duration, *seed, *budget, *chaosProb, *chaosStall, *chaosBudget, *faults, *crashers, *verbose))
	}
	os.Exit(campaign(*n, *duration, *seed, *budget, *mutate, *jobs, *corpus, *crashers, *noreduce, *verbose))
}

// chaosCampaign runs generated programs through the chaos oracle with
// every fault point armed. Violations are written unminimized (the
// reduction predicate cannot replay a seeded probabilistic fault
// sequence deterministically across shrink candidates).
func chaosCampaign(n int, duration time.Duration, seed int64, budget int, prob float64, stall, passBudget time.Duration, faultSpec, crashDir string, verbose bool) int {
	if n <= 0 {
		n = 0 // timed mode below
	}
	if err := os.MkdirAll(crashDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	faultpoint.Enable(faultpoint.Options{Seed: seed, Prob: prob, Stall: stall})
	if faultSpec != "" {
		if err := faultpoint.ArmSpec(faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	defer faultpoint.Reset()

	oracle := &fuzzgen.ChaosOracle{PassBudget: passBudget}
	configs := []rolag.Config{
		{Opt: rolag.OptRoLAG},
		{Opt: rolag.OptRoLAG, Unroll: 8, Flatten: true},
		{Opt: rolag.OptLLVMReroll},
	}
	deadline := time.Now().Add(duration)
	var (
		mu                                   sync.Mutex
		seenBugs                             = map[string]bool{}
		tried, firedN, degradedN, violations int
	)
	for i := int64(0); ; i++ {
		if n > 0 && i >= int64(n) {
			break
		}
		if n == 0 && time.Now().After(deadline) {
			break
		}
		rng := rand.New(rand.NewSource(seed + i))
		src := fuzzgen.Generate(seed+i, rng.Intn(budget)+4)
		fail, fired, degraded := oracle.Check(src, configs[i%int64(len(configs))])
		tried++
		if fired {
			firedN++
		}
		if degraded {
			degradedN++
		}
		if fail != nil {
			violations++
			if verbose {
				fmt.Fprintf(os.Stderr, "[chaos %d] %v\n", seed+i, fail)
			}
			writeCrasher(&mu, seenBugs, crashDir, src, fail)
		}
	}
	fmt.Fprintf(os.Stderr,
		"chaos campaign done: %d programs, %d hit faults, %d degraded, %d violations\n",
		tried, firedN, degradedN, violations)
	if violations > 0 {
		return 1
	}
	if tried > 20 && firedN == 0 {
		fmt.Fprintln(os.Stderr, "chaos: no faults fired across the whole campaign; injection is not reaching the pipeline")
		return 1
	}
	return 0
}

// reproduceFile re-runs the oracle on one file and, if it still fails,
// prints the minimized reproduction to stdout.
func reproduceFile(path string, noreduce bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	o := &fuzzgen.Oracle{SkipCompileErrors: true}
	fail, exercised := o.Check(string(data))
	if !exercised {
		fmt.Fprintln(os.Stderr, "input does not compile")
		return 2
	}
	if fail == nil {
		fmt.Println("PASS: no failure reproduced")
		return 0
	}
	fmt.Fprintf(os.Stderr, "reproduced: %v\n", fail)
	src := string(data)
	if !noreduce {
		src = reduce.Minimize(src, samePred(o, fail))
		fmt.Fprintf(os.Stderr, "minimized to %d statements\n", reduce.Statements(src))
	}
	fmt.Println(src)
	return 1
}

// samePred builds the reduction predicate: the candidate must fail the
// oracle with the same class and variant as the original failure.
func samePred(o *fuzzgen.Oracle, orig *fuzzgen.Failure) reduce.Predicate {
	return func(src string) bool {
		fail, _ := o.Check(src)
		return fail != nil && orig.SameBug(fail)
	}
}

func campaign(n int, duration time.Duration, seed int64, budget, mutatePct, jobs int, corpusDir, crashDir string, noreduce, verbose bool) int {
	var corpusFiles []string
	if corpusDir != "" {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		matches, _ := filepath.Glob(filepath.Join(corpusDir, "*.c"))
		corpusFiles = matches
	}
	if err := os.MkdirAll(crashDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	deadline := time.Now().Add(duration)
	var (
		seq      atomic.Int64
		found    atomic.Int64
		mu       sync.Mutex // serializes crasher/corpus writes
		wg       sync.WaitGroup
		seenBugs = map[string]bool{}
	)
	seq.Store(seed)

	worker := func() {
		defer wg.Done()
		o := &fuzzgen.Oracle{SkipCompileErrors: true}
		for {
			i := seq.Add(1)
			if n > 0 && i-seed > int64(n) {
				return
			}
			if n == 0 && time.Now().After(deadline) {
				return
			}
			rng := rand.New(rand.NewSource(i))
			var src string
			if len(corpusFiles) > 0 && rng.Intn(100) < mutatePct {
				data, err := os.ReadFile(corpusFiles[rng.Intn(len(corpusFiles))])
				if err != nil {
					continue
				}
				src = fuzzgen.Mutate(rng, string(data), rng.Intn(6)+1)
			} else {
				src = fuzzgen.Generate(i, rng.Intn(budget)+4)
			}
			fail, exercised := o.Check(src)
			if !exercised {
				continue
			}
			if fail == nil {
				if corpusDir != "" && rng.Intn(50) == 0 {
					saveCorpus(&mu, corpusDir, src)
				}
				continue
			}
			found.Add(1)
			if verbose {
				fmt.Fprintf(os.Stderr, "[%d] %v\n", i, fail)
			}
			min := src
			if !noreduce {
				min = reduce.Minimize(src, samePred(o, fail))
			}
			writeCrasher(&mu, seenBugs, crashDir, min, fail)
		}
	}

	if jobs < 1 {
		jobs = 1
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()

	snap := fuzzgen.Snapshot()
	out, _ := json.MarshalIndent(snap, "", "  ")
	fmt.Fprintf(os.Stderr, "campaign done: %s\n", out)
	if found.Load() > 0 {
		fmt.Fprintf(os.Stderr, "%d failing programs written to %s\n", found.Load(), crashDir)
		return 1
	}
	return 0
}

func saveCorpus(mu *sync.Mutex, dir, src string) {
	mu.Lock()
	defer mu.Unlock()
	sum := sha256.Sum256([]byte(src))
	path := filepath.Join(dir, fmt.Sprintf("corpus-%x.c", sum[:8]))
	if _, err := os.Stat(path); err == nil {
		return
	}
	_ = os.WriteFile(path, []byte(src), 0o644)
}

// writeCrasher stores one minimized failure, deduplicated by
// (class, variant) so a campaign reports each distinct bug once.
func writeCrasher(mu *sync.Mutex, seen map[string]bool, dir, src string, fail *fuzzgen.Failure) {
	mu.Lock()
	defer mu.Unlock()
	key := fail.Class + "/" + fail.Variant
	if seen[key] {
		return
	}
	seen[key] = true
	sum := sha256.Sum256([]byte(src))
	base := filepath.Join(dir, fmt.Sprintf("crash-%s-%x", fail.Class, sum[:6]))
	_ = os.WriteFile(base+".c", []byte(src), 0o644)
	_ = os.WriteFile(base+".txt", []byte(fail.Error()+"\n"), 0o644)
	fmt.Fprintf(os.Stderr, "crasher: %s.c (%v)\n", base, fail)
}
