// Command rolag-top is a live terminal dashboard for a rolag fleet:
// it polls the router's /debug/fleet aggregation and redraws one
// compact screen in place — per-shard health state, RED rates, cache
// hit rates, latency quantiles, and the router's own hedge/failover
// counters.
//
// Usage:
//
//	rolag-top [-router http://localhost:8722] [-interval 2s] [-once]
//
// -once prints a single snapshot (forcing a fresh scrape) and exits —
// usable from scripts and CI where a redrawing screen is noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"rolag/internal/obs/fleet"
)

func fetchOverview(client *http.Client, url string) (fleet.Overview, error) {
	var ov fleet.Overview
	resp, err := client.Get(url)
	if err != nil {
		return ov, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ov, err
	}
	if resp.StatusCode != http.StatusOK {
		return ov, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &ov); err != nil {
		return ov, fmt.Errorf("decoding /debug/fleet: %w", err)
	}
	return ov, nil
}

// state decorates a shard state with an ANSI color when writing to a
// terminal: up green, suspect yellow, down red.
func state(s string, color bool) string {
	if !color {
		if s == "" {
			return "?"
		}
		return s
	}
	switch s {
	case "up":
		return "\x1b[32m" + s + "\x1b[0m"
	case "suspect":
		return "\x1b[33m" + s + "\x1b[0m"
	case "down":
		return "\x1b[31m" + s + "\x1b[0m"
	}
	return "?"
}

func render(w io.Writer, ov fleet.Overview, routerURL string, color bool) {
	fmt.Fprintf(w, "rolag fleet  %s  %s\n\n", routerURL, time.Now().Format("15:04:05"))

	r := ov.Router
	fmt.Fprintf(w, "router   req %d   batches %d (items %d)   failovers %d   hedge won/primary/failed %d/%d/%d   trace-drop %d\n",
		r.Requests, r.Batches, r.Items, r.Failovers, r.HedgeWins, r.HedgePrimary, r.HedgeFailed, r.TraceDropped)

	// Route latency from both vantages: what the router measured
	// (includes hop time) next to the fleet merge of shard-reported
	// histograms. A wide gap between the two is network or queueing,
	// not compile time.
	routerByRoute := map[string]fleet.RouteLatency{}
	for _, rl := range r.Routes {
		routerByRoute[rl.Route] = rl
	}
	routes := append([]fleet.RouteLatency(nil), ov.Routes...)
	sort.Slice(routes, func(i, j int) bool { return routes[i].Route < routes[j].Route })
	for _, rl := range routes {
		line := fmt.Sprintf("route    %-12s n %-7d fleet p50/p95/p99 %.1f/%.1f/%.1f ms", rl.Route, rl.Count, rl.P50Ms, rl.P95Ms, rl.P99Ms)
		if rr, ok := routerByRoute[rl.Route]; ok && rr.Count > 0 {
			line += fmt.Sprintf("   router p99 %.1f ms", rr.P99Ms)
		}
		fmt.Fprintln(w, line)
	}

	fmt.Fprintf(w, "\n%-10s %-8s %8s %7s %9s %6s %6s %6s %7s %7s %7s %6s %6s\n",
		"SHARD", "STATE", "REQ", "REQ/S", "ERR/S", "HIT%", "PEER", "INFL", "P50ms", "P95ms", "P99ms", "DROP", "AGE")
	for _, sh := range ov.Shards {
		if !sh.ScrapeOK {
			fmt.Fprintf(w, "%-10s %-8s scrape failed: %s\n", sh.Shard, state(sh.State, color), sh.ScrapeError)
			continue
		}
		fmt.Fprintf(w, "%-10s %-8s %8d %7.1f %9.2f %6.1f %6d %6d %7.2f %7.2f %7.2f %6d %5.1fs\n",
			sh.Shard, state(sh.State, color),
			sh.Requests, sh.RatePerSec, sh.ErrorRatePerSec,
			sh.HitRate*100, sh.PeerHits, sh.InFlight,
			sh.P50Ms, sh.P95Ms, sh.P99Ms,
			sh.TraceDropped, sh.AgeSeconds)
	}
}

func main() {
	router := flag.String("router", "http://localhost:8722", "router base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll cadence")
	once := flag.Bool("once", false, "print one snapshot (forcing a fresh scrape) and exit")
	noColor := flag.Bool("no-color", false, "disable ANSI colors")
	flag.Parse()

	base := strings.TrimSuffix(*router, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	if *once {
		ov, err := fetchOverview(client, base+"/debug/fleet?refresh=1")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rolag-top: %v\n", err)
			os.Exit(1)
		}
		render(os.Stdout, ov, base, false)
		return
	}

	color := !*noColor
	var lastErr string
	for {
		ov, err := fetchOverview(client, base+"/debug/fleet")
		// Redraw in place: home the cursor, paint, then clear whatever
		// the previous (possibly taller) frame left below.
		var buf strings.Builder
		buf.WriteString("\x1b[H")
		if err != nil {
			lastErr = err.Error()
			fmt.Fprintf(&buf, "rolag fleet  %s  %s\n\nunreachable: %s\n", base, time.Now().Format("15:04:05"), lastErr)
		} else {
			render(&buf, ov, base, color)
		}
		buf.WriteString("\x1b[J")
		os.Stdout.WriteString(buf.String())
		time.Sleep(*interval)
	}
}
