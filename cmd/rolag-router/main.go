// Command rolag-router fronts a fleet of rolagd shards with
// consistent-hash routing (internal/cluster): every compile request is
// forwarded to the shard that owns its content-addressed cache key, so
// each shard's cache serves a disjoint slice of the keyspace and the
// fleet behaves as one large cache.
//
// Usage:
//
//	rolag-router [-addr :8722] -shards a=http://h1:8723,b=http://h2:8723,...
//	             [-vnodes 128] [-timeout 60s] [-log text|json]
//	             [-probe-interval 1s] [-probe-timeout 500ms] [-down-after 3]
//	             [-hedge] [-hedge-quantile 0.95] [-hedge-min 2ms] [-hedge-max 250ms]
//	             [-trace=false] [-trace-buf N] [-scrape-interval 2s]
//
// Endpoints:
//
//	POST /v1/compile     route one compile to the key's home shard
//	POST /v1/batch       fan a batch across shards by key, results in input order
//	GET  /v1/cachestats  fleet-wide cache counters (aggregate + per shard)
//	GET  /healthz        fleet readiness: ok / degraded / down per shard
//	GET  /metrics        Prometheus text exposition (router_* series)
//	GET  /debug/fleet    aggregated fleet telemetry (per-shard RED + latency, JSON)
//	GET  /debug/trace    the router's own span ring (Chrome trace JSON; ?trace=<id> filters)
//	GET  /debug/trace/{id} one trace stitched across the router and every shard
//	GET  /debug/pprof/*  runtime profiling
//
// When a home shard is unreachable or failing, the router retries the
// request on the ring's next shard and marks the result degraded (the
// "router:failover" marker in degradedPasses). Content addressing makes
// any shard's answer for a key correct, so failover can change latency
// and cache locality but never the bytes of a result.
//
// The router is also the fleet's telemetry plane: a background scrape
// loop pulls every shard's /v1/cachestats into /debug/fleet (per-shard
// RED rates, fleet-merged latency quantiles, hedge/failover counters),
// and /debug/trace/{id} stitches one request's spans across the router
// and every shard into a single Chrome trace with one track per
// process — hedge races show both legs, the loser canceled.
//
// A background prober additionally tracks every shard up/suspect/down
// (router_shard_state): a shard that fails -down-after consecutive
// probes or requests is routed around proactively, costing zero
// connection attempts per request, and rejoins on its next successful
// probe. With -hedge, a compile that the home shard has not answered
// within an adaptive per-shard latency quantile is raced against the
// key's next successor; the first answer wins (router_hedge_total) and
// the loser is canceled.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"rolag/internal/cluster"
	"rolag/internal/obs"
)

// parseShards decodes "a=http://h1:8723,b=http://h2:8723" into a
// shard-name → base-URL map.
func parseShards(s string) (map[string]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-shards is required (name=url,...)")
	}
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -shards entry %q (want name=url)", part)
		}
		out[name] = strings.TrimSuffix(url, "/")
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8722", "listen address")
	shardsFlag := flag.String("shards", "", "shard membership as name=url,... (same list the shards were started with)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per shard (0 = default; must match the shards)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-upstream-request deadline")
	logFormat := flag.String("log", "text", "structured log format: text or json")
	probeInterval := flag.Duration("probe-interval", 0, "background shard health probe cadence (0 = default 1s; negative disables)")
	probeTimeout := flag.Duration("probe-timeout", 0, "per-probe /readyz deadline (0 = default 500ms)")
	downAfter := flag.Int("down-after", 0, "consecutive failures before a shard is routed around (0 = default 3)")
	hedge := flag.Bool("hedge", false, "hedge slow compiles against the key's next ring successor")
	hedgeQuantile := flag.Float64("hedge-quantile", 0, "per-shard latency quantile used as the hedge delay (0 = default 0.95)")
	hedgeMin := flag.Duration("hedge-min", 0, "hedge delay floor (0 = default 2ms)")
	hedgeMax := flag.Duration("hedge-max", 0, "hedge delay ceiling (0 = default 250ms)")
	trace := flag.Bool("trace", true, "record per-request spans (exported at /debug/trace)")
	traceBuf := flag.Int("trace-buf", obs.DefaultTraceCapacity, "span ring-buffer capacity (oldest spans are overwritten)")
	scrapeInterval := flag.Duration("scrape-interval", 0, "fleet-metrics scrape cadence for /debug/fleet (0 = default 2s; negative disables the loop)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rolag-router: unknown -log format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rolag-router: %v\n", err)
		os.Exit(2)
	}

	obs.SetTraceCapacity(*traceBuf)
	obs.EnableTracing(*trace)

	rt, err := cluster.New(cluster.Config{
		Shards:         shards,
		VNodes:         *vnodes,
		HTTPClient:     &http.Client{Timeout: *timeout},
		Log:            logger,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		DownAfter:      *downAfter,
		Hedge:          *hedge,
		HedgeQuantile:  *hedgeQuantile,
		HedgeMinDelay:  *hedgeMin,
		HedgeMaxDelay:  *hedgeMax,
		ScrapeInterval: *scrapeInterval,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rolag-router: %v\n", err)
		os.Exit(2)
	}

	logger.Info("routing", "addr", *addr, "shards", len(shards), "hedge", *hedge, "trace", *trace)
	if err := http.ListenAndServe(*addr, rt.Handler()); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}
