// Command rolagc is the compiler driver: it compiles a mini-C source
// file to the project's SSA IR, optionally unrolls its loops, applies a
// loop-(re)rolling technique and reports code sizes.
//
// Usage:
//
//	rolagc [-opt none|llvm|rolag] [-unroll N] [-emit ir|asm|bytes|none]
//	       [-stats] [-ir] [-remarks json|yaml] [-explain func] file.c
//
// With no file argument, source is read from standard input. With -ir
// the input is the project's textual IR instead of mini-C.
//
// -emit selects what lands on stdout: "ir" (default) prints the final
// IR, "asm" the x86-64 assembly emitted by internal/backend, "bytes" a
// per-function hex dump of the encoded machine code, and "none"
// nothing. -emit=true and -emit=false keep their historical boolean
// meaning (ir / none). With -emit asm|bytes or -stats, a
// "text: N bytes, rodata: N bytes" line with measured (not estimated)
// sizes is printed to standard error.
//
// Remarks: -remarks json (or yaml) records one remark per rolling
// decision — seed grouping, per-node alignment outcomes, scheduling
// rejections, cost-model verdicts, reroll attempts — and prints the
// deterministic stream to standard output. -explain <func> (or
// -explain all) renders the same remarks as a human-readable report
// explaining why each candidate in that function was or was not
// rolled. Both default -emit to false unless it was set explicitly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"rolag"
	"rolag/internal/backend"
	"rolag/internal/irparse"
	"rolag/internal/obs"
	"rolag/internal/passes"
	rl "rolag/internal/rolag"
)

// emitFlag is the -emit mode: ir, asm, bytes or none. The historical
// boolean spellings -emit=true and -emit=false still parse (ir / none).
type emitFlag struct{ mode string }

func (e *emitFlag) String() string { return e.mode }

func (e *emitFlag) Set(v string) error {
	switch v {
	case "true":
		e.mode = "ir"
	case "false":
		e.mode = "none"
	case "ir", "asm", "bytes", "none":
		e.mode = v
	default:
		return fmt.Errorf("want ir, asm, bytes or none")
	}
	return nil
}

func main() {
	opt := flag.String("opt", "rolag", "optimization: none, llvm (rerolling baseline) or rolag")
	unroll := flag.Int("unroll", 0, "force-unroll inner loops by this factor first (0 = off)")
	emit := &emitFlag{mode: "ir"}
	flag.Var(emit, "emit", "print the final ir, its asm, its machine-code bytes, or none")
	stats := flag.Bool("stats", false, "print RoLAG statistics")
	noSpecial := flag.Bool("no-special-nodes", false, "disable RoLAG's special nodes (Fig. 19 ablation)")
	alwaysRoll := flag.Bool("always-roll", false, "skip the profitability analysis")
	fastMath := flag.Bool("fast-math", false, "allow floating-point reassociation (reductions)")
	irInput := flag.Bool("ir", false, "input is textual IR rather than mini-C")
	flatten := flag.Bool("flatten", false, "flatten rerolled loop nests after RoLAG (§V.C cleanup)")
	remarks := flag.String("remarks", "", "print optimization remarks to stdout: json or yaml")
	explain := flag.String("explain", "", "print a human-readable remark report for this function (or \"all\")")
	flag.Parse()

	if *remarks != "" && *remarks != "json" && *remarks != "yaml" {
		fmt.Fprintf(os.Stderr, "rolagc: unknown -remarks format %q (want json or yaml)\n", *remarks)
		os.Exit(2)
	}
	// Remark output replaces the IR on stdout unless the user asked for
	// both explicitly.
	if *remarks != "" || *explain != "" {
		emitSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "emit" {
				emitSet = true
			}
		})
		if !emitSet {
			emit.mode = "none"
		}
	}

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: rolagc [flags] [file.c]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rolagc: %v\n", err)
		os.Exit(1)
	}

	cfg := rolag.Config{Name: "main", Unroll: *unroll, Flatten: *flatten,
		Remarks: *remarks != "" || *explain != ""}
	switch *opt {
	case "none":
		cfg.Opt = rolag.OptNone
	case "llvm":
		cfg.Opt = rolag.OptLLVMReroll
	case "rolag":
		cfg.Opt = rolag.OptRoLAG
		opts := rolag.DefaultOptions()
		if *noSpecial {
			opts = rolag.NoSpecialNodes()
		}
		opts.AlwaysRoll = *alwaysRoll
		opts.FastMath = *fastMath
		cfg.Options = opts
	default:
		fmt.Fprintf(os.Stderr, "rolagc: unknown -opt %q\n", *opt)
		os.Exit(2)
	}

	var res *rolag.Result
	if *irInput {
		m, perr := irparse.ParseModule(string(src))
		if perr != nil {
			fmt.Fprintf(os.Stderr, "rolagc: %v\n", perr)
			os.Exit(1)
		}
		passes.Standard().Run(m)
		res, err = rolag.Optimize(m, cfg)
	} else {
		res, err = rolag.Build(string(src), cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rolagc: %v\n", err)
		os.Exit(1)
	}
	// Lower through the assembly backend when the output mode or the
	// statistics need measured bytes.
	var lowered *backend.Result
	if emit.mode == "asm" || emit.mode == "bytes" || *stats {
		lowered, err = backend.Compile(res.Module, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rolagc: %v\n", err)
			os.Exit(1)
		}
	}
	switch emit.mode {
	case "ir":
		fmt.Print(res.Module)
	case "asm":
		fmt.Print(lowered.Asm())
	case "bytes":
		for _, name := range lowered.Code.FuncOrder {
			fc := lowered.Code.Funcs[name]
			fmt.Printf("%s: %d bytes\n", name, fc.Size())
			for off := 0; off < len(fc.Bytes); off += 16 {
				end := off + 16
				if end > len(fc.Bytes) {
					end = len(fc.Bytes)
				}
				fmt.Printf("  %04x: % x\n", off, fc.Bytes[off:end])
			}
		}
	}
	switch *remarks {
	case "json":
		if err := obs.WriteJSON(os.Stdout, res.Remarks); err != nil {
			fmt.Fprintf(os.Stderr, "rolagc: %v\n", err)
			os.Exit(1)
		}
	case "yaml":
		if err := obs.WriteYAML(os.Stdout, res.Remarks); err != nil {
			fmt.Fprintf(os.Stderr, "rolagc: %v\n", err)
			os.Exit(1)
		}
	}
	if *explain != "" {
		obs.Explain(os.Stdout, res.Remarks, *explain)
	}
	fmt.Fprintf(os.Stderr, "size: %d -> %d bytes (%+.1f%%)\n",
		res.BinaryBefore, res.BinaryAfter, -res.Reduction())
	if lowered != nil {
		fmt.Fprintf(os.Stderr, "text: %d bytes, rodata: %d bytes\n",
			lowered.Code.Text, lowered.Code.Rodata)
		if *stats {
			for _, name := range lowered.Code.FuncOrder {
				fmt.Fprintf(os.Stderr, "  text %-16s %d bytes\n", name, lowered.Code.FuncSize(name))
			}
		}
	}
	if res.Stats != nil && *stats {
		fmt.Fprintf(os.Stderr, "rolag: blocks=%d seeds=%d graphs=%d rolled=%d scheduleFailed=%d notProfitable=%d\n",
			res.Stats.BlocksScanned, res.Stats.SeedGroups, res.Stats.GraphsBuilt,
			res.Stats.LoopsRolled, res.Stats.ScheduleFailed, res.Stats.NotProfitable)
		kinds := make([]rl.NodeKind, 0, len(res.Stats.NodeCounts))
		for k := range res.Stats.NodeCounts {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			fmt.Fprintf(os.Stderr, "  node %-11s %d\n", k, res.Stats.NodeCounts[k])
		}
	}
	if cfg.Opt == rolag.OptLLVMReroll {
		fmt.Fprintf(os.Stderr, "llvm rerolling: %d loops rerolled\n", res.Rerolled)
	}
}
