package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rolag/internal/service"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	engine := service.New(service.Config{Workers: 2})
	t.Cleanup(func() { engine.Close(context.Background()) })
	srv := httptest.NewServer(newMux(engine, 10*time.Second))
	t.Cleanup(srv.Close)
	return srv
}

const testSrc = `void f(int *a) {
  a[0] = a[0] + 1;
  a[1] = a[1] + 1;
  a[2] = a[2] + 1;
  a[3] = a[3] + 1;
}`

func postCompile(t *testing.T, srv *httptest.Server, body string) (*http.Response, CompileResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out CompileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestCompileEndpoint(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(map[string]any{"source": testSrc})
	resp, out := postCompile(t, srv, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.IR == "" {
		t.Error("missing IR in response")
	}
	if out.BinaryBefore == 0 || out.BinaryAfter == 0 {
		t.Errorf("missing sizes: %+v", out)
	}
	if out.CacheHit {
		t.Error("first request reported a cache hit")
	}

	// Identical request → cache hit, identical IR.
	resp2, out2 := postCompile(t, srv, string(body))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if !out2.CacheHit {
		t.Error("second request missed the cache")
	}
	if out2.IR != out.IR {
		t.Error("cached IR differs")
	}
}

func TestCompileEndpointErrors(t *testing.T) {
	srv := newTestServer(t)

	resp, _ := postCompile(t, srv, `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postCompile(t, srv, `{"source":"void f() {}","config":{"opt":"wat"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad opt: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postCompile(t, srv, `{"source":"int f( {"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("compile error: status %d, want 422", resp.StatusCode)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	srv := newTestServer(t)
	body, _ := json.Marshal(map[string]any{"source": testSrc})
	postCompile(t, srv, string(body))

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status  string                  `json:"status"`
		Metrics service.MetricsSnapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Metrics.Requests == 0 {
		t.Errorf("unexpected health: %+v", health)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"rolagd_requests_total", "rolagd_cache_hits_total",
		"rolagd_compile_seconds_bucket{le=\"+Inf\"}", "rolagd_loops_rolled_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
