// Command rolagd is the RoLAG compilation daemon: the concurrent
// service engine (internal/service) behind the HTTP surface of
// internal/daemon.
//
// Usage:
//
//	rolagd [-addr :8723] [-workers N] [-cache N] [-max-inflight N]
//	       [-request-timeout 30s] [-shutdown-timeout 10s]
//	       [-pass-budget 10s] [-breaker-threshold 5] [-breaker-cooldown 30s]
//	       [-fail-hard] [-func-parallel N] [-phase-timing=false]
//	       [-trace=false] [-trace-buf N] [-log text|json]
//	       [-shard-id a -peers a=http://h1:8723,b=http://h2:8723,...]
//	       [-vnodes 128] [-peer-timeout 250ms]
//	       [-snapshot /var/lib/rolagd/cache.snapshot] [-snapshot-interval 30s]
//
// Endpoints:
//
//	POST /v1/compile    compile one unit (JSON in, JSON out; see rolagdapi.CompileRequest)
//	POST /v1/batch      compile a whole module/corpus in one request, results in item order
//	GET  /v1/cache/{key} export one cached result to a peer shard (404 on miss; never compiles)
//	GET  /v1/cachestats cache hit/miss/size counters straight from the engine
//	POST /v1/snapshot   force a cache snapshot now (501 unless started with -snapshot)
//	GET  /healthz       liveness plus a metrics summary (JSON); 200 while the process runs
//	GET  /readyz        readiness; 503 while draining or while the rolag breaker is open
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/vars    the same counters as expvar JSON
//	GET  /debug/trace   span ring buffer as Chrome trace-event JSON (chrome://tracing, Perfetto)
//	GET  /debug/pprof   Go runtime profiles
//
// Cluster mode: with -shard-id and -peers, this replica joins a
// consistent-hash ring shared (by construction — every member computes
// it from the same -peers list) with the other replicas and the
// rolag-router. On a local cache miss for a key another shard owns,
// the daemon asks that home shard's cache (GET /v1/cache/{key},
// bounded by -peer-timeout) before compiling, so N replicas behave as
// one logical cache. See README.md "Cluster mode".
//
// Warm restart: with -snapshot, the daemon writes its result cache to
// the given file every -snapshot-interval and once more at drain time,
// and loads it back on startup so a restarted replica begins warm. The
// load is all-or-nothing: a truncated, tampered, or cache-key-stale
// snapshot is rejected (rolagd_snapshot_rejected_total) and the daemon
// starts cold instead of serving doubtful bytes.
//
// Tracing: every request is assigned a trace ID (or adopts the caller's
// X-Trace-Id header), echoed back in the X-Trace-Id response header,
// attached to every structured log line, and used to label the request's
// spans — HTTP handling, engine compile, sandboxed passes, pipeline
// stages, and RoLAG phases — in the /debug/trace export.
//
// Overload: when more than -max-inflight requests are in flight the
// daemon sheds with HTTP 429 and a Retry-After header instead of
// queueing unboundedly. A request may bound its own compile time with
// the timeoutMs body field, clamped by -request-timeout.
//
// On SIGINT/SIGTERM the daemon marks /readyz unready, stops accepting
// connections, drains in-flight compilations for up to
// -shutdown-timeout, and exits; /healthz stays 200 until exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rolag/internal/daemon"
	"rolag/internal/obs"
	"rolag/internal/service"
)

// parsePeers decodes "a=http://h1:8723,b=http://h2:8723" into a
// shard-name → base-URL map.
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=url)", part)
		}
		out[name] = strings.TrimSuffix(url, "/")
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "result-cache entries (negative disables caching)")
	queue := flag.Int("queue", 0, "job-queue depth (0 = 4x workers)")
	maxInFlight := flag.Int("max-inflight", 0, "admission bound before shedding with 429 (0 = 4x(workers+queue), negative disables)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-job compile deadline cap (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
	passBudget := flag.Duration("pass-budget", 0, "fail-soft per-pass wall-clock budget (0 = built-in default)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive pass failures that open its breaker (0 = default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
	failHard := flag.Bool("fail-hard", false, "disable the fail-soft sandbox: a broken pass fails the whole job")
	funcParallel := flag.Int("func-parallel", 0, "functions optimized concurrently within one job (0/1 = serial, negative = GOMAXPROCS); output is byte-identical")
	phaseTiming := flag.Bool("phase-timing", true, "record per-phase RoLAG timings (exported as rolagd_phase_seconds)")
	trace := flag.Bool("trace", true, "record per-request spans (exported at /debug/trace)")
	traceBuf := flag.Int("trace-buf", obs.DefaultTraceCapacity, "span ring-buffer capacity (oldest spans are overwritten)")
	logFormat := flag.String("log", "text", "structured log format: text or json")
	shardID := flag.String("shard-id", "", "this replica's name on the cluster ring (empty = standalone)")
	peersFlag := flag.String("peers", "", "cluster membership as name=url,... (must include -shard-id; identical on every member)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per shard (0 = default)")
	peerTimeout := flag.Duration("peer-timeout", 0, "fetch-on-miss peer cache lookup deadline (0 = built-in default)")
	snapshotPath := flag.String("snapshot", "", "cache snapshot file for warm restarts (empty = disabled)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "periodic snapshot cadence (0 = default 30s; negative = drain-time only)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rolagd: unknown -log format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rolagd: %v\n", err)
		os.Exit(2)
	}
	if *shardID != "" {
		if _, ok := peers[*shardID]; !ok {
			fmt.Fprintf(os.Stderr, "rolagd: -shard-id %q is not in -peers\n", *shardID)
			os.Exit(2)
		}
	}

	obs.EnableSpanStats(*phaseTiming)
	obs.SetTraceCapacity(*traceBuf)
	obs.EnableTracing(*trace)
	d := daemon.New(daemon.Config{
		Engine: service.Config{
			Workers:          *workers,
			QueueDepth:       *queue,
			CacheEntries:     *cache,
			MaxInFlight:      *maxInFlight,
			DisableFailSoft:  *failHard,
			PassBudget:       *passBudget,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			FuncParallelism:  *funcParallel,
		},
		RequestCap:       *requestTimeout,
		Log:              logger,
		ShardID:          *shardID,
		Peers:            peers,
		VNodes:           *vnodes,
		PeerTimeout:      *peerTimeout,
		SnapshotPath:     *snapshotPath,
		SnapshotInterval: *snapshotInterval,
	})
	srv := &http.Server{Addr: *addr, Handler: d.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", d.Engine().Workers(),
		"shard", *shardID, "peers", len(peers),
		"trace", *trace, "phase_timing", *phaseTiming)

	select {
	case err := <-errCh:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	d.BeginDrain()
	logger.Info("draining", "timeout", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := d.Close(sctx); err != nil {
		logger.Error("engine drain", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
