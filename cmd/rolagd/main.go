// Command rolagd is the RoLAG compilation daemon: the concurrent
// service engine (internal/service) behind an HTTP API.
//
// Usage:
//
//	rolagd [-addr :8723] [-workers N] [-cache N] [-max-inflight N]
//	       [-request-timeout 30s] [-shutdown-timeout 10s]
//	       [-pass-budget 10s] [-breaker-threshold 5] [-breaker-cooldown 30s]
//	       [-fail-hard] [-func-parallel N] [-phase-timing=false]
//
// Endpoints:
//
//	POST /v1/compile   compile one unit (JSON in, JSON out; see rolagdapi.CompileRequest)
//	GET  /healthz      liveness plus a metrics summary (JSON); 200 while the process runs
//	GET  /readyz       readiness; 503 while draining or while the rolag breaker is open
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/vars   the same counters as expvar JSON
//
// Overload: when more than -max-inflight requests are in flight the
// daemon sheds with HTTP 429 and a Retry-After header instead of
// queueing unboundedly. A request may bound its own compile time with
// the timeoutMs body field, clamped by -request-timeout.
//
// On SIGINT/SIGTERM the daemon marks /readyz unready, stops accepting
// connections, drains in-flight compilations for up to
// -shutdown-timeout, and exits; /healthz stays 200 until exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	rolagcore "rolag/internal/rolag"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// Wire types live in internal/rolagdapi so the daemon, its client, and
// the experiment drivers share one protocol definition.
type (
	CompileRequest  = rolagdapi.CompileRequest
	CompileResponse = rolagdapi.CompileResponse
)

// shedRetryAfter is the Retry-After hint (seconds) on 429 replies:
// compiles are fast, so shed load can come back almost immediately.
const shedRetryAfter = 1

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// daemon wires the engine to the HTTP surface and carries the drain
// flag that splits liveness from readiness.
type daemon struct {
	engine *service.Engine
	// requestCap bounds every compile deadline; a request's timeoutMs
	// is clamped to it (0 = no cap and timeoutMs is used as given).
	requestCap time.Duration
	draining   atomic.Bool
}

// beginDrain flips /readyz to 503. Called when shutdown starts, before
// the listener closes, so load balancers stop routing here first.
func (d *daemon) beginDrain() { d.draining.Store(true) }

// effectiveTimeout resolves a request's timeoutMs against the server
// cap: the smaller of the two wins, and with no cap the request value
// is used as-is.
func effectiveTimeout(requestMs int, cap time.Duration) time.Duration {
	reqTO := time.Duration(requestMs) * time.Millisecond
	switch {
	case reqTO <= 0:
		return cap
	case cap > 0 && reqTO > cap:
		return cap
	default:
		return reqTO
	}
}

func (d *daemon) handleCompile(w http.ResponseWriter, r *http.Request) {
	var cr CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	req, err := cr.ToService()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	ctx := r.Context()
	if to := effectiveTimeout(cr.TimeoutMs, d.requestCap); to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	start := time.Now()
	resp, err := d.engine.Compile(ctx, req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, service.ErrOverloaded):
			w.Header().Set("Retry-After", fmt.Sprint(shedRetryAfter))
			status = http.StatusTooManyRequests
		case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrDraining):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	out := CompileResponse{
		IR:           resp.IR,
		SizeBefore:   resp.SizeBefore,
		SizeAfter:    resp.SizeAfter,
		BinaryBefore: resp.BinaryBefore,
		BinaryAfter:  resp.BinaryAfter,
		Reduction:    resp.Reduction(),
		Rerolled:     resp.Rerolled,
		CacheHit:     resp.CacheHit,
		ElapsedMs:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	if resp.Stats != nil {
		out.LoopsRolled = resp.Stats.LoopsRolled
		out.NodeCounts = rolagdapi.NodeCountsToWire(resp.Stats.NodeCounts)
	}
	if resp.Degraded != nil {
		out.Degraded = true
		out.DegradedPasses = resp.Degraded.Passes()
	}
	writeJSON(w, http.StatusOK, out)
}

// mux builds the daemon's routes. Split from main so tests can drive
// the full HTTP surface in-process.
func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", d.handleCompile)

	// Liveness: the process is up and serving HTTP. Stays 200 through a
	// graceful drain so orchestrators don't kill a draining instance.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"draining": d.draining.Load(),
			"metrics":  d.engine.Metrics(),
		})
	})

	// Readiness: whether new traffic should be routed here. 503 while
	// draining or while the core optimization is breaker-dark (served
	// results would silently skip RoLAG).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		state := "ready"
		switch {
		case d.draining.Load():
			status, state = http.StatusServiceUnavailable, "draining"
		case d.engine.Dark():
			status, state = http.StatusServiceUnavailable, "breaker-dark"
		}
		writeJSON(w, status, map[string]any{
			"status":   state,
			"breakers": d.engine.Breakers(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s := d.engine.Metrics()
		s.WritePrometheus(w)
	})

	// expvar.Publish panics on duplicate names; tests build several muxes.
	if expvar.Get("rolagd") == nil {
		e := d.engine
		expvar.Publish("rolagd", expvar.Func(func() any { return e.Metrics() }))
	}
	mux.Handle("GET /debug/vars", expvar.Handler())

	return mux
}

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "result-cache entries (negative disables caching)")
	queue := flag.Int("queue", 0, "job-queue depth (0 = 4x workers)")
	maxInFlight := flag.Int("max-inflight", 0, "admission bound before shedding with 429 (0 = 4x(workers+queue), negative disables)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-job compile deadline cap (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
	passBudget := flag.Duration("pass-budget", 0, "fail-soft per-pass wall-clock budget (0 = built-in default)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive pass failures that open its breaker (0 = default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
	failHard := flag.Bool("fail-hard", false, "disable the fail-soft sandbox: a broken pass fails the whole job")
	funcParallel := flag.Int("func-parallel", 0, "functions optimized concurrently within one job (0/1 = serial, negative = GOMAXPROCS); output is byte-identical")
	phaseTiming := flag.Bool("phase-timing", true, "record per-phase RoLAG timings (exported as rolagd_phase_seconds)")
	flag.Parse()

	rolagcore.EnablePhaseTiming(*phaseTiming)
	engine := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		MaxInFlight:      *maxInFlight,
		DisableFailSoft:  *failHard,
		PassBudget:       *passBudget,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		FuncParallelism:  *funcParallel,
	})
	d := &daemon{engine: engine, requestCap: *requestTimeout}
	srv := &http.Server{Addr: *addr, Handler: d.mux()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rolagd: listening on %s (%d workers)\n", *addr, engine.Workers())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "rolagd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	d.beginDrain()
	fmt.Fprintf(os.Stderr, "rolagd: draining (up to %s)...\n", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "rolagd: http shutdown: %v\n", err)
	}
	if err := engine.Close(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "rolagd: engine drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rolagd: drained cleanly")
}
