// Command rolagd is the RoLAG compilation daemon: the concurrent
// service engine (internal/service) behind an HTTP API.
//
// Usage:
//
//	rolagd [-addr :8723] [-workers N] [-cache N] [-max-inflight N]
//	       [-request-timeout 30s] [-shutdown-timeout 10s]
//	       [-pass-budget 10s] [-breaker-threshold 5] [-breaker-cooldown 30s]
//	       [-fail-hard] [-func-parallel N] [-phase-timing=false]
//	       [-trace=false] [-trace-buf N] [-log text|json]
//
// Endpoints:
//
//	POST /v1/compile   compile one unit (JSON in, JSON out; see rolagdapi.CompileRequest)
//	GET  /healthz      liveness plus a metrics summary (JSON); 200 while the process runs
//	GET  /readyz       readiness; 503 while draining or while the rolag breaker is open
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/vars   the same counters as expvar JSON
//	GET  /debug/trace  span ring buffer as Chrome trace-event JSON (chrome://tracing, Perfetto)
//	GET  /debug/pprof  Go runtime profiles
//
// Tracing: every request is assigned a trace ID (or adopts the caller's
// X-Trace-Id header), echoed back in the X-Trace-Id response header,
// attached to every structured log line, and used to label the request's
// spans — HTTP handling, engine compile, sandboxed passes, pipeline
// stages, and RoLAG phases — in the /debug/trace export.
//
// Overload: when more than -max-inflight requests are in flight the
// daemon sheds with HTTP 429 and a Retry-After header instead of
// queueing unboundedly. A request may bound its own compile time with
// the timeoutMs body field, clamped by -request-timeout.
//
// On SIGINT/SIGTERM the daemon marks /readyz unready, stops accepting
// connections, drains in-flight compilations for up to
// -shutdown-timeout, and exits; /healthz stays 200 until exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"rolag/internal/obs"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
)

// Wire types live in internal/rolagdapi so the daemon, its client, and
// the experiment drivers share one protocol definition.
type (
	CompileRequest  = rolagdapi.CompileRequest
	CompileResponse = rolagdapi.CompileResponse
)

// shedRetryAfter is the Retry-After hint (seconds) on 429 replies:
// compiles are fast, so shed load can come back almost immediately.
const shedRetryAfter = 1

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// daemon wires the engine to the HTTP surface and carries the drain
// flag that splits liveness from readiness.
type daemon struct {
	engine *service.Engine
	// requestCap bounds every compile deadline; a request's timeoutMs
	// is clamped to it (0 = no cap and timeoutMs is used as given).
	requestCap time.Duration
	// log receives one structured line per request, tagged with the
	// request's trace ID; nil falls back to slog.Default().
	log      *slog.Logger
	draining atomic.Bool
}

func (d *daemon) logger() *slog.Logger {
	if d.log != nil {
		return d.log
	}
	return slog.Default()
}

// beginDrain flips /readyz to 503. Called when shutdown starts, before
// the listener closes, so load balancers stop routing here first.
func (d *daemon) beginDrain() { d.draining.Store(true) }

// effectiveTimeout resolves a request's timeoutMs against the server
// cap: the smaller of the two wins, and with no cap the request value
// is used as-is.
func effectiveTimeout(requestMs int, cap time.Duration) time.Duration {
	reqTO := time.Duration(requestMs) * time.Millisecond
	switch {
	case reqTO <= 0:
		return cap
	case cap > 0 && reqTO > cap:
		return cap
	default:
		return reqTO
	}
}

func (d *daemon) handleCompile(w http.ResponseWriter, r *http.Request) {
	var cr CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	req, err := cr.ToService()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	ctx := r.Context()
	if to := effectiveTimeout(cr.TimeoutMs, d.requestCap); to > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, to)
		defer cancel()
	}
	start := time.Now()
	resp, err := d.engine.Compile(ctx, req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, service.ErrOverloaded):
			w.Header().Set("Retry-After", fmt.Sprint(shedRetryAfter))
			status = http.StatusTooManyRequests
		case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrDraining):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, rolagdapi.ErrorResponse{Error: err.Error()})
		return
	}
	out := CompileResponse{
		IR:           resp.IR,
		SizeBefore:   resp.SizeBefore,
		SizeAfter:    resp.SizeAfter,
		BinaryBefore: resp.BinaryBefore,
		BinaryAfter:  resp.BinaryAfter,
		Reduction:    resp.Reduction(),
		Rerolled:     resp.Rerolled,
		CacheHit:     resp.CacheHit,
		ElapsedMs:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	if resp.Stats != nil {
		out.LoopsRolled = resp.Stats.LoopsRolled
		out.NodeCounts = rolagdapi.NodeCountsToWire(resp.Stats.NodeCounts)
	}
	if resp.Degraded != nil {
		out.Degraded = true
		out.DegradedPasses = resp.Degraded.Passes()
	}
	out.Remarks = resp.Remarks
	writeJSON(w, http.StatusOK, out)
}

// statusWriter captures the response status for the request log line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// traced wraps the route mux with per-request tracing: it adopts or
// mints the X-Trace-Id, threads an obs.TraceContext through the request
// context (so engine, sandbox, and RoLAG spans land on this request's
// trace), records the HTTP handling itself as a span, and emits one
// structured log line per request. Compiles log at Info, probes
// (health/metrics/debug) at Debug.
func (d *daemon) traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get("X-Trace-Id"))
		w.Header().Set("X-Trace-Id", tr.ID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		span := obs.Now()
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		obs.EndSpan(tr, "http:"+r.URL.Path, span, r.Method)

		level := slog.LevelDebug
		if r.URL.Path == "/v1/compile" {
			level = slog.LevelInfo
		}
		d.logger().Log(r.Context(), level, "request",
			"trace", tr.ID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed", time.Since(start),
		)
	})
}

// mux builds the daemon's routes behind the tracing middleware. Split
// from main so tests can drive the full HTTP surface in-process.
func (d *daemon) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", d.handleCompile)

	// Liveness: the process is up and serving HTTP. Stays 200 through a
	// graceful drain so orchestrators don't kill a draining instance.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"draining": d.draining.Load(),
			"metrics":  d.engine.Metrics(),
		})
	})

	// Readiness: whether new traffic should be routed here. 503 while
	// draining or while the core optimization is breaker-dark (served
	// results would silently skip RoLAG).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		state := "ready"
		switch {
		case d.draining.Load():
			status, state = http.StatusServiceUnavailable, "draining"
		case d.engine.Dark():
			status, state = http.StatusServiceUnavailable, "breaker-dark"
		}
		writeJSON(w, status, map[string]any{
			"status":   state,
			"breakers": d.engine.Breakers(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s := d.engine.Metrics()
		s.WritePrometheus(w)
	})

	// expvar.Publish panics on duplicate names; tests build several muxes.
	if expvar.Get("rolagd") == nil {
		e := d.engine
		expvar.Publish("rolagd", expvar.Func(func() any { return e.Metrics() }))
	}
	mux.Handle("GET /debug/vars", expvar.Handler())

	// The span ring buffer as Chrome trace-event JSON; load it in
	// chrome://tracing or https://ui.perfetto.dev.
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w)
	})

	// Runtime profiling. The default mux registers these as a side
	// effect of importing net/http/pprof; rolagd builds its own mux, so
	// wire them explicitly.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	return d.traced(mux)
}

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "result-cache entries (negative disables caching)")
	queue := flag.Int("queue", 0, "job-queue depth (0 = 4x workers)")
	maxInFlight := flag.Int("max-inflight", 0, "admission bound before shedding with 429 (0 = 4x(workers+queue), negative disables)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-job compile deadline cap (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
	passBudget := flag.Duration("pass-budget", 0, "fail-soft per-pass wall-clock budget (0 = built-in default)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive pass failures that open its breaker (0 = default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default)")
	failHard := flag.Bool("fail-hard", false, "disable the fail-soft sandbox: a broken pass fails the whole job")
	funcParallel := flag.Int("func-parallel", 0, "functions optimized concurrently within one job (0/1 = serial, negative = GOMAXPROCS); output is byte-identical")
	phaseTiming := flag.Bool("phase-timing", true, "record per-phase RoLAG timings (exported as rolagd_phase_seconds)")
	trace := flag.Bool("trace", true, "record per-request spans (exported at /debug/trace)")
	traceBuf := flag.Int("trace-buf", obs.DefaultTraceCapacity, "span ring-buffer capacity (oldest spans are overwritten)")
	logFormat := flag.String("log", "text", "structured log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "rolagd: unknown -log format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	obs.EnableSpanStats(*phaseTiming)
	obs.SetTraceCapacity(*traceBuf)
	obs.EnableTracing(*trace)
	engine := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cache,
		MaxInFlight:      *maxInFlight,
		DisableFailSoft:  *failHard,
		PassBudget:       *passBudget,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		FuncParallelism:  *funcParallel,
	})
	d := &daemon{engine: engine, requestCap: *requestTimeout, log: logger}
	srv := &http.Server{Addr: *addr, Handler: d.mux()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", engine.Workers(),
		"trace", *trace, "phase_timing", *phaseTiming)

	select {
	case err := <-errCh:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	d.beginDrain()
	logger.Info("draining", "timeout", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Error("http shutdown", "err", err)
	}
	if err := engine.Close(sctx); err != nil {
		logger.Error("engine drain", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
