// Command rolagd is the RoLAG compilation daemon: the concurrent
// service engine (internal/service) behind an HTTP API.
//
// Usage:
//
//	rolagd [-addr :8723] [-workers N] [-cache N] [-request-timeout 30s] [-shutdown-timeout 10s]
//
// Endpoints:
//
//	POST /v1/compile   compile one unit (JSON in, JSON out; see CompileRequest)
//	GET  /healthz      liveness plus a metrics summary (JSON)
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/vars   the same counters as expvar JSON
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight compilations for up to -shutdown-timeout, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rolag"
	"rolag/internal/service"
)

// CompileRequest is the POST /v1/compile body.
type CompileRequest struct {
	// Source is mini-C, or textual IR when IR is set.
	Source string `json:"source"`
	IR     bool   `json:"ir,omitempty"`
	Config struct {
		Name string `json:"name,omitempty"`
		// Opt is "none", "llvm" or "rolag" (default "rolag").
		Opt            string `json:"opt,omitempty"`
		Unroll         int    `json:"unroll,omitempty"`
		Flatten        bool   `json:"flatten,omitempty"`
		FastMath       bool   `json:"fastMath,omitempty"`
		AlwaysRoll     bool   `json:"alwaysRoll,omitempty"`
		NoSpecialNodes bool   `json:"noSpecialNodes,omitempty"`
		// Extensions enables the beyond-paper min/max reductions.
		Extensions bool `json:"extensions,omitempty"`
	} `json:"config"`
	// EmitIR asks for the final IR text (default true).
	EmitIR *bool `json:"emitIR,omitempty"`
}

// CompileResponse is the POST /v1/compile result.
type CompileResponse struct {
	IR           string  `json:"ir,omitempty"`
	SizeBefore   int     `json:"sizeBefore"`
	SizeAfter    int     `json:"sizeAfter"`
	BinaryBefore int     `json:"binaryBefore"`
	BinaryAfter  int     `json:"binaryAfter"`
	Reduction    float64 `json:"reduction"`
	LoopsRolled  int     `json:"loopsRolled"`
	Rerolled     int     `json:"rerolled"`
	CacheHit     bool    `json:"cacheHit"`
	ElapsedMs    float64 `json:"elapsedMs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// toServiceRequest maps the wire config onto the facade config.
func (cr *CompileRequest) toServiceRequest() (service.Request, error) {
	req := service.Request{Source: cr.Source, IRInput: cr.IR}
	req.EmitIR = cr.EmitIR == nil || *cr.EmitIR
	cfg := rolag.Config{Name: cr.Config.Name, Unroll: cr.Config.Unroll, Flatten: cr.Config.Flatten}
	switch cr.Config.Opt {
	case "none":
		cfg.Opt = rolag.OptNone
	case "llvm":
		cfg.Opt = rolag.OptLLVMReroll
	case "", "rolag":
		cfg.Opt = rolag.OptRoLAG
		opts := rolag.DefaultOptions()
		if cr.Config.NoSpecialNodes {
			opts = rolag.NoSpecialNodes()
		} else if cr.Config.Extensions {
			opts = rolag.Extensions()
		}
		opts.FastMath = cr.Config.FastMath
		opts.AlwaysRoll = cr.Config.AlwaysRoll
		cfg.Options = opts
	default:
		return req, fmt.Errorf("unknown opt %q (want none, llvm or rolag)", cr.Config.Opt)
	}
	req.Config = cfg
	return req, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// newMux wires the daemon's routes around an engine. Split from main so
// tests can drive the full HTTP surface in-process.
func newMux(e *service.Engine, requestTimeout time.Duration) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		var cr CompileRequest
		if err := json.NewDecoder(r.Body).Decode(&cr); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
		req, err := cr.toServiceRequest()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		ctx := r.Context()
		if requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, requestTimeout)
			defer cancel()
		}
		start := time.Now()
		resp, err := e.Compile(ctx, req)
		if err != nil {
			status := http.StatusUnprocessableEntity
			switch {
			case errors.Is(err, service.ErrClosed), errors.Is(err, service.ErrDraining):
				status = http.StatusServiceUnavailable
			case errors.Is(err, context.DeadlineExceeded):
				status = http.StatusGatewayTimeout
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		out := CompileResponse{
			IR:           resp.IR,
			SizeBefore:   resp.SizeBefore,
			SizeAfter:    resp.SizeAfter,
			BinaryBefore: resp.BinaryBefore,
			BinaryAfter:  resp.BinaryAfter,
			Reduction:    resp.Reduction(),
			Rerolled:     resp.Rerolled,
			CacheHit:     resp.CacheHit,
			ElapsedMs:    float64(time.Since(start)) / float64(time.Millisecond),
		}
		if resp.Stats != nil {
			out.LoopsRolled = resp.Stats.LoopsRolled
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"metrics": e.Metrics(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s := e.Metrics()
		s.WritePrometheus(w)
	})

	// expvar.Publish panics on duplicate names; tests build several muxes.
	if expvar.Get("rolagd") == nil {
		expvar.Publish("rolagd", expvar.Func(func() any { return e.Metrics() }))
	}
	mux.Handle("GET /debug/vars", expvar.Handler())

	return mux
}

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 4096, "result-cache entries (negative disables caching)")
	queue := flag.Int("queue", 0, "job-queue depth (0 = 4x workers)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-job compile deadline (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	engine := service.New(service.Config{Workers: *workers, QueueDepth: *queue, CacheEntries: *cache})
	srv := &http.Server{Addr: *addr, Handler: newMux(engine, *requestTimeout)}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rolagd: listening on %s (%d workers)\n", *addr, engine.Workers())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "rolagd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "rolagd: draining (up to %s)...\n", *shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "rolagd: http shutdown: %v\n", err)
	}
	if err := engine.Close(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "rolagd: engine drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rolagd: drained cleanly")
}
