// Command rolag-bench is the reproducible core-optimizer benchmark
// harness: it compiles a synthesized corpus N times and reports
// wall-clock (p50/p99), per-phase RoLAG timings (seed, align, schedule,
// codegen — the same timers behind rolagd's rolagd_phase_seconds), and
// allocation counts, as JSON.
//
// Usage:
//
//	rolag-bench [-corpus angha|tsvc] [-n 300] [-seed 20220402]
//	            [-iters 5] [-parallel N] [-out results/BENCH_core.json]
//	            [-cpuprofile f] [-memprofile f]
//	            [-check baseline.json] [-max-slowdown 2]
//
// With -check, the run is compared against a committed baseline: the
// harness exits non-zero when ns-per-function regresses by more than
// -max-slowdown×. The comparison is normalized per corpus function, so
// a smoke run with a small -n can be gated against a full baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"rolag/internal/experiments"
)

func main() {
	corpus := flag.String("corpus", "angha", "workload: angha or tsvc")
	n := flag.Int("n", 300, "angha corpus size (ignored for tsvc)")
	seed := flag.Int64("seed", 20220402, "angha corpus seed")
	iters := flag.Int("iters", 5, "full-corpus compilation iterations")
	parallel := flag.Int("parallel", 0, "rolag.Config.Parallelism per unit (0 = serial)")
	out := flag.String("out", "", "write the result JSON here (default stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured iterations")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run")
	check := flag.String("check", "", "baseline JSON to gate against (exit 1 on regression)")
	maxSlowdown := flag.Float64("max-slowdown", 2, "allowed ns-per-function ratio vs the -check baseline")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	res, err := experiments.RunCoreBench(experiments.CoreBenchConfig{
		Corpus:      *corpus,
		N:           *n,
		Seed:        *seed,
		Iterations:  *iters,
		Parallelism: *parallel,
	})
	if err != nil {
		fatal(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rolag-bench: %s corpus, %d functions x %d iterations: "+
			"p50 %.3fs, p99 %.3fs, %.0f ns/function, %d allocs/iteration -> %s\n",
			res.Config.Corpus, res.Functions, res.Config.Iterations,
			res.WallP50Seconds, res.WallP99Seconds, res.NsPerFunction,
			res.AllocsPerIteration, *out)
	}

	if *check != "" {
		if err := gate(res, *check, *maxSlowdown); err != nil {
			fmt.Fprintf(os.Stderr, "rolag-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// gate compares the run against a committed baseline, normalized per
// corpus function so differently sized runs stay comparable.
func gate(res *experiments.CoreBench, baselinePath string, maxSlowdown float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base experiments.CoreBench
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != res.Schema {
		return fmt.Errorf("baseline schema %q != run schema %q", base.Schema, res.Schema)
	}
	if base.Config.Corpus != res.Config.Corpus {
		return fmt.Errorf("baseline corpus %q != run corpus %q", base.Config.Corpus, res.Config.Corpus)
	}
	if base.NsPerFunction <= 0 {
		return fmt.Errorf("baseline %s has no ns_per_function", baselinePath)
	}
	ratio := res.NsPerFunction / base.NsPerFunction
	fmt.Fprintf(os.Stderr, "rolag-bench: %.0f ns/function vs baseline %.0f (ratio %.2fx, limit %.2fx)\n",
		res.NsPerFunction, base.NsPerFunction, ratio, maxSlowdown)
	if ratio > maxSlowdown {
		return fmt.Errorf("regression: %.2fx slower than baseline (limit %.2fx)", ratio, maxSlowdown)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rolag-bench: %v\n", err)
	os.Exit(1)
}
