// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes text reports plus CSV data files.
//
// Usage:
//
//	experiments [-out results] [-run all|angha|tsvc|table1|perf|bench|calib] [-n 2000] [-serial]
//
// The experiment ids map to the paper as follows: "angha" produces
// Fig. 15, Fig. 16 and a rejected-by-reason table built from the
// optimizer's remarks, "table1" produces Table I, "tsvc" produces
// Fig. 17, Fig. 18 and Fig. 19, and "perf" produces the §V.D overhead
// summary. "bench" times the serial reference driver against the
// concurrent service engine (cold and warm cache) and writes the
// machine-readable BENCH_service.json perf record.
//
// The corpus experiments run through the shared concurrent engine
// (internal/service) by default; -serial restores the one-at-a-time
// facade driver, and -daemon http://host:port offloads the angha corpus
// to a running rolagd through the retrying HTTP client.
//
// "calib" compiles the corpus straight-line and rolled through the
// x86-64 backend, compares the measured object bytes against the
// binary cost model, and writes CALIB_costmodel.json; with -check it
// fails unless the model stays inside its error gates (MAPE and
// rolled-vs-straight sign agreement), which `make ci` relies on to
// catch cost-model drift.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"rolag/internal/backend/calib"
	"rolag/internal/experiments"
	"rolag/internal/service"
)

func main() {
	out := flag.String("out", "results", "directory for CSV output (empty = none)")
	run := flag.String("run", "all", "comma-separated experiments: angha,tsvc,table1,perf,bench,calib or all")
	n := flag.Int("n", 2000, "AnghaBench corpus size")
	seed := flag.Int64("seed", 0, "AnghaBench corpus seed (0 = default)")
	benchN := flag.Int("benchn", 600, "corpus size for the service benchmark")
	workers := flag.Int("workers", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	serial := flag.Bool("serial", false, "use the serial reference driver instead of the engine")
	daemon := flag.String("daemon", "", "base URL of a running rolagd; the angha corpus compiles remotely through it")
	calibN := flag.Int("calibn", 400, "corpus size for the cost-model calibration")
	check := flag.Bool("check", false, "fail if the calibration misses its regression gate (MAPE, sign agreement)")
	flag.Parse()

	want := make(map[string]bool)
	for _, s := range strings.Split(*run, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	rep := &experiments.Report{Dir: *out}

	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", what, err)
		os.Exit(1)
	}

	// One engine serves every corpus experiment, so identical
	// compilations (e.g. the tsvc and perf passes) hit the cache.
	var engine *service.Engine
	if !*serial {
		engine = service.New(service.Config{Workers: *workers})
		defer engine.Close(context.Background())
	}

	if all || want["angha"] {
		fmt.Println("running AnghaBench experiment (Fig. 15, Fig. 16)...")
		s, err := experiments.RunAngha(experiments.AnghaConfig{N: *n, Seed: *seed, Engine: engine, Serial: *serial, Daemon: *daemon})
		if err != nil {
			fail("angha", err)
		}
		if err := rep.Fig15(s); err != nil {
			fail("fig15", err)
		}
		if err := rep.Fig16(s); err != nil {
			fail("fig16", err)
		}
		if err := rep.Rejections(s); err != nil {
			fail("rejections", err)
		}
	}
	if all || want["table1"] {
		fmt.Println("running MiBench/SPEC experiment (Table I)...")
		rows, err := experiments.RunTable1()
		if err != nil {
			fail("table1", err)
		}
		if err := rep.Table1(rows); err != nil {
			fail("table1 report", err)
		}
	}
	if all || want["tsvc"] || want["perf"] {
		fmt.Println("running TSVC experiment (Fig. 17, Fig. 18, Fig. 19, §V.D)...")
		cfg := experiments.DefaultTSVCConfig()
		cfg.MeasurePerf = all || want["perf"]
		cfg.WithExtensions = true
		cfg.Engine = engine
		cfg.Serial = *serial
		s, err := experiments.RunTSVC(cfg)
		if err != nil {
			fail("tsvc", err)
		}
		if all || want["tsvc"] {
			if err := rep.Fig17(s); err != nil {
				fail("fig17", err)
			}
			if err := rep.Fig18(s); err != nil {
				fail("fig18", err)
			}
			if err := rep.Fig19(s); err != nil {
				fail("fig19", err)
			}
		}
		if cfg.MeasurePerf {
			if err := rep.Perf(s); err != nil {
				fail("perf", err)
			}
		}
	}
	if all || want["calib"] {
		fmt.Println("calibrating the binary cost model against the assembly backend...")
		c, err := calib.Run(calib.Config{N: *calibN, Seed: *seed})
		if err != nil {
			fail("calib", err)
		}
		if err := rep.Calib(c); err != nil {
			fail("calib report", err)
		}
		if *check {
			if err := c.Check(); err != nil {
				fail("calib gate", err)
			}
			fmt.Println("calibration gate passed")
		}
	}
	if all || want["bench"] {
		fmt.Println("running service-mode benchmark (serial vs engine, cold and warm cache)...")
		b, err := experiments.RunServiceBench(experiments.ServiceBenchConfig{N: *benchN, Seed: *seed, Workers: *workers})
		if err != nil {
			fail("bench", err)
		}
		if err := rep.ServiceBench(b); err != nil {
			fail("bench report", err)
		}
		if !b.Identical {
			fail("bench", fmt.Errorf("parallel driver diverged from the serial reference"))
		}
	}
	if *out != "" {
		fmt.Printf("\nCSV data written to %s/\n", *out)
	}
}
