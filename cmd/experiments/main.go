// Command experiments regenerates every table and figure of the paper's
// evaluation section and writes text reports plus CSV data files.
//
// Usage:
//
//	experiments [-out results] [-run all|angha|tsvc|table1|perf] [-n 2000]
//
// The experiment ids map to the paper as follows: "angha" produces
// Fig. 15 and Fig. 16, "table1" produces Table I, "tsvc" produces
// Fig. 17, Fig. 18 and Fig. 19, and "perf" produces the §V.D overhead
// summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rolag/internal/experiments"
)

func main() {
	out := flag.String("out", "results", "directory for CSV output (empty = none)")
	run := flag.String("run", "all", "comma-separated experiments: angha,tsvc,table1,perf or all")
	n := flag.Int("n", 2000, "AnghaBench corpus size")
	seed := flag.Int64("seed", 0, "AnghaBench corpus seed (0 = default)")
	flag.Parse()

	want := make(map[string]bool)
	for _, s := range strings.Split(*run, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	rep := &experiments.Report{Dir: *out}

	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", what, err)
		os.Exit(1)
	}

	if all || want["angha"] {
		fmt.Println("running AnghaBench experiment (Fig. 15, Fig. 16)...")
		s, err := experiments.RunAngha(experiments.AnghaConfig{N: *n, Seed: *seed})
		if err != nil {
			fail("angha", err)
		}
		if err := rep.Fig15(s); err != nil {
			fail("fig15", err)
		}
		if err := rep.Fig16(s); err != nil {
			fail("fig16", err)
		}
	}
	if all || want["table1"] {
		fmt.Println("running MiBench/SPEC experiment (Table I)...")
		rows, err := experiments.RunTable1()
		if err != nil {
			fail("table1", err)
		}
		if err := rep.Table1(rows); err != nil {
			fail("table1 report", err)
		}
	}
	if all || want["tsvc"] || want["perf"] {
		fmt.Println("running TSVC experiment (Fig. 17, Fig. 18, Fig. 19, §V.D)...")
		cfg := experiments.DefaultTSVCConfig()
		cfg.MeasurePerf = all || want["perf"]
		cfg.WithExtensions = true
		s, err := experiments.RunTSVC(cfg)
		if err != nil {
			fail("tsvc", err)
		}
		if all || want["tsvc"] {
			if err := rep.Fig17(s); err != nil {
				fail("fig17", err)
			}
			if err := rep.Fig18(s); err != nil {
				fail("fig18", err)
			}
			if err := rep.Fig19(s); err != nil {
				fail("fig19", err)
			}
		}
		if cfg.MeasurePerf {
			if err := rep.Perf(s); err != nil {
				fail("perf", err)
			}
		}
	}
	if *out != "" {
		fmt.Printf("\nCSV data written to %s/\n", *out)
	}
}
