package main

// The fleet-telemetry benchmark (-fleet): boot the same local cluster
// the main benchmark uses — but with tracing on and one span ring per
// process, exactly like separate OS processes — drive a traced burst
// through the router, and gate two fleet-plane SLOs:
//
//   - Trace completeness: for a sample of requests, the router's
//     GET /debug/trace/{id} must return a fully-stitched Chrome trace
//     with a router track AND at least one shard track. The gate is
//     -min-trace-complete (default 0.99).
//   - Histogram consistency: the router-observed /v1/compile p99 must
//     agree with the fleet-merged shard-reported p99 within
//     -fleet-p99-ratio plus a -fleet-p99-floor absolute allowance.
//     The router measures hop time on top of shard service time, so
//     the two can differ — but a wide gap means the aggregation or the
//     scrape plumbing is lying, which is exactly what this catches.
//
// The result is written as rolag/fleet-bench/v1 JSON; the committed
// copy lives at results/BENCH_fleet.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/cluster"
	"rolag/internal/daemon"
	"rolag/internal/obs"
	"rolag/internal/obs/fleet"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
	"rolag/internal/workloads/angha"
)

// FleetSchema identifies the BENCH_fleet.json layout.
const FleetSchema = "rolag/fleet-bench/v1"

type fleetConfig struct {
	shards, workers, n int
	seed               int64
	requests           int
	rate               float64
	zipfS              float64
	timeout            time.Duration
	out                string

	sample      int     // stitched-trace checks after the burst
	minComplete float64 // trace-completeness gate
	p99Ratio    float64 // histogram-consistency ratio allowance
	p99FloorMs  float64 // histogram-consistency absolute allowance
	traceBuf    int     // per-process span ring capacity
}

// FleetResult is the machine-readable fleet-telemetry record.
type FleetResult struct {
	Schema string `json:"schema"`
	Config struct {
		Shards   int     `json:"shards"`
		Workers  int     `json:"workers"`
		CorpusN  int     `json:"corpus_n"`
		Seed     int64   `json:"seed"`
		Requests int     `json:"requests"`
		Rate     float64 `json:"rate_per_sec"`
		ZipfS    float64 `json:"zipf_s"`
		TraceBuf int     `json:"trace_buf"`
	} `json:"config"`
	Completed int64 `json:"completed"`
	Errors    int64 `json:"errors"`
	Trace     struct {
		Sampled      int     `json:"sampled"`
		Stitched     int     `json:"stitched"` // router + ≥1 shard track
		Completeness float64 `json:"completeness"`
		MinComplete  float64 `json:"min_complete"`
		DroppedSpans uint64  `json:"dropped_spans"` // router + fleet total
	} `json:"trace"`
	Latency struct {
		RouterP99Ms float64 `json:"router_p99_ms"`
		FleetP99Ms  float64 `json:"fleet_p99_ms"`
		RatioLimit  float64 `json:"ratio_limit"`
		FloorMs     float64 `json:"floor_ms"`
	} `json:"latency"`
	Router fleet.RouterStats `json:"router"`
	Gates  struct {
		TraceComplete bool `json:"trace_complete"`
		P99Consistent bool `json:"p99_consistent"`
	} `json:"gates"`
}

func runFleet(cfg fleetConfig) {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	// One ring per process. Everything here shares one address space,
	// so without private rings every "process" would export every span
	// and stitching would trivially (and falsely) pass.
	obs.EnableTracing(true)
	defer obs.EnableTracing(false)

	res := &FleetResult{Schema: FleetSchema}
	res.Config.Shards = cfg.shards
	res.Config.Workers = cfg.workers
	res.Config.CorpusN = cfg.n
	res.Config.Seed = cfg.seed
	res.Config.Requests = cfg.requests
	res.Config.Rate = cfg.rate
	res.Config.ZipfS = cfg.zipfS
	res.Config.TraceBuf = cfg.traceBuf

	corpus := angha.Generate(cfg.n, cfg.seed)

	lns := make([]net.Listener, cfg.shards)
	peers := make(map[string]string, cfg.shards)
	names := make([]string, cfg.shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		lns[i] = ln
		names[i] = fmt.Sprintf("shard-%c", 'a'+i)
		peers[names[i]] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		d := daemon.New(daemon.Config{
			Engine:     service.Config{Workers: cfg.workers},
			RequestCap: cfg.timeout,
			Log:        logger,
			ShardID:    names[i],
			Peers:      peers,
			TraceRing:  obs.NewTraceRing(cfg.traceBuf),
		})
		go (&http.Server{Handler: d.Handler()}).Serve(lns[i])
	}
	rt, err := cluster.New(cluster.Config{
		Shards:    peers,
		Log:       logger,
		Hedge:     true,
		TraceRing: obs.NewTraceRing(cfg.traceBuf),
	})
	if err != nil {
		fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go (&http.Server{Handler: rt.Handler()}).Serve(rln)
	routerURL := "http://" + rln.Addr().String()
	routerClient := &rolagdapi.Client{BaseURL: routerURL}

	zrng := rand.New(rand.NewSource(cfg.seed + 1))
	zipf := rand.NewZipf(zrng, cfg.zipfS, 1, uint64(cfg.n-1))
	arng := rand.New(rand.NewSource(cfg.seed + 2))

	var (
		mu       sync.Mutex
		traceIDs []string
		wg       sync.WaitGroup

		completed, errs atomic.Int64
	)
	for i := 0; i < cfg.requests; i++ {
		time.Sleep(time.Duration(arng.ExpFloat64() / cfg.rate * float64(time.Second)))
		idx := int(zipf.Uint64())
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			defer cancel()
			resp, err := routerClient.Compile(ctx, &rolagdapi.CompileRequest{Source: corpus[idx].Src})
			if err != nil {
				errs.Add(1)
				return
			}
			completed.Add(1)
			if resp.TraceID != "" {
				mu.Lock()
				traceIDs = append(traceIDs, resp.TraceID)
				mu.Unlock()
			}
		}(idx)
	}
	wg.Wait()
	res.Completed = completed.Load()
	res.Errors = errs.Load()

	// Trace completeness over the most recent -trace-sample requests
	// (recent, because old traces legitimately age out of a bounded
	// ring; sampling the tail measures the plane, not ring capacity).
	sample := traceIDs
	if len(sample) > cfg.sample {
		sample = sample[len(sample)-cfg.sample:]
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	stitched := 0
	for _, id := range sample {
		resp, err := httpc.Get(routerURL + "/debug/trace/" + id)
		if err != nil {
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		procs, err := fleet.Processes(body)
		if err != nil {
			continue
		}
		shardTracks := 0
		for name, spans := range procs {
			if strings.HasPrefix(name, "shard-") && spans > 0 {
				shardTracks++
			}
		}
		if procs["router"] > 0 && shardTracks >= 1 {
			stitched++
		}
	}
	res.Trace.Sampled = len(sample)
	res.Trace.Stitched = stitched
	res.Trace.MinComplete = cfg.minComplete
	if len(sample) > 0 {
		res.Trace.Completeness = float64(stitched) / float64(len(sample))
	}

	// Histogram consistency: router-observed vs fleet-merged p99 for
	// /v1/compile, after a synchronous scrape so the merge is current.
	scrapeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	rt.ScrapeNow(scrapeCtx)
	cancel()
	ov := rt.FleetOverview()
	res.Router = ov.Router
	res.Trace.DroppedSpans = ov.Router.TraceDropped
	for _, sh := range ov.Shards {
		res.Trace.DroppedSpans += sh.TraceDropped
	}
	routerP99 := rt.RouterRouteHist("/v1/compile").Quantile(0.99) * 1e3
	fleetP99 := rt.FleetRouteHist("/v1/compile").Quantile(0.99) * 1e3
	res.Latency.RouterP99Ms = routerP99
	res.Latency.FleetP99Ms = fleetP99
	res.Latency.RatioLimit = cfg.p99Ratio
	res.Latency.FloorMs = cfg.p99FloorMs

	within := func(a, b float64) bool { return a <= b*cfg.p99Ratio+cfg.p99FloorMs }
	res.Gates.P99Consistent = routerP99 > 0 && fleetP99 > 0 &&
		within(routerP99, fleetP99) && within(fleetP99, routerP99)
	res.Gates.TraceComplete = res.Trace.Sampled > 0 && res.Trace.Completeness >= cfg.minComplete

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if cfg.out == "" {
		os.Stdout.Write(data)
	} else {
		if dir := filepath.Dir(cfg.out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rolag-loadgen: fleet: %d/%d ok, traces %d/%d stitched (%.1f%%), "+
		"p99 router %.1fms vs fleet %.1fms, hedge won %d, dropped spans %d\n",
		res.Completed, cfg.requests, stitched, len(sample), res.Trace.Completeness*100,
		routerP99, fleetP99, res.Router.HedgeWins, res.Trace.DroppedSpans)

	failed := false
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: fleet: %d requests failed\n", res.Errors)
		failed = true
	}
	if !res.Gates.TraceComplete {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: fleet: trace completeness %.3f below gate %.3f\n",
			res.Trace.Completeness, cfg.minComplete)
		failed = true
	}
	if !res.Gates.P99Consistent {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: fleet: p99 inconsistent: router %.1fms vs fleet %.1fms "+
			"(limit %.1fx + %.0fms)\n", routerP99, fleetP99, cfg.p99Ratio, cfg.p99FloorMs)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
