package main

// Cluster-level chaos harness (-chaos): the same local cluster and
// zipfian traffic as the benchmark, but with the network misbehaving
// and one shard murdered mid-load.
//
// Faults come from two directions at once:
//
//   - every router→shard link runs through a faultpoint.Transport armed
//     with -chaos-net-prob of stalls, refusals, and blackholes
//     (EnableSites("net:", ...) — engine and cache fault sites stay
//     dark, so any wrong byte is the cluster's fault, not the
//     compiler's);
//   - the shard owning the hottest key is crashed un-drained (no
//     goodbye snapshot) at -chaos-kill-frac of the run and restarted on
//     the same port after -chaos-restart-delay, warm-starting from its
//     last periodic snapshot.
//
// The router runs with fast health probes and hedging enabled — the
// survivability machinery this harness exists to exercise. Three gates
// decide the exit code:
//
//   - parity: every successful response (degraded or not — network
//     failover must never change bytes) matches the serial reference;
//   - availability: completed/issued ≥ -min-availability despite the
//     crash and the faulty links;
//   - warm restart: the restarted victim loaded snapshot entries and
//     served snapshot-warm hits afterward.
//
// The JSON written to -out (schema rolag/cluster-chaos/v1) records the
// run, the victim's timeline, hedge outcomes, and each gate's verdict.

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/cluster"
	"rolag/internal/daemon"
	"rolag/internal/faultpoint"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
	"rolag/internal/workloads/angha"
)

// ChaosSchema identifies the BENCH_chaos.json layout.
const ChaosSchema = "rolag/cluster-chaos/v1"

// ChaosResult is the machine-readable record of one chaos run.
type ChaosResult struct {
	Schema string `json:"schema"`
	Config struct {
		Shards           int     `json:"shards"`
		Workers          int     `json:"workers"`
		CorpusN          int     `json:"corpus_n"`
		Seed             int64   `json:"seed"`
		Requests         int     `json:"requests"`
		Rate             float64 `json:"rate_per_sec"`
		ZipfS            float64 `json:"zipf_s"`
		NetFaultProb     float64 `json:"net_fault_prob"`
		KillFrac         float64 `json:"kill_frac"`
		RestartDelayMs   float64 `json:"restart_delay_ms"`
		SnapshotInterval string  `json:"snapshot_interval"`
		MinAvailability  float64 `json:"min_availability"`
	} `json:"config"`
	WallSeconds  float64 `json:"wall_seconds"`
	Issued       int64   `json:"issued"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	Availability float64 `json:"availability"`
	Degraded     int64   `json:"degraded"`
	Failovers    int64   `json:"failovers"`
	Latency      struct {
		P50Ms float64 `json:"p50_ms"`
		P99Ms float64 `json:"p99_ms"`
		MaxMs float64 `json:"max_ms"`
	} `json:"latency"`
	Hedge struct {
		PrimaryWins int64 `json:"primary_wins"`
		HedgeWins   int64 `json:"hedge_wins"`
		BothFailed  int64 `json:"both_failed"`
	} `json:"hedge"`
	Victim struct {
		Shard            string  `json:"shard"`
		KilledAtRequest  int     `json:"killed_at_request"`
		DownMs           float64 `json:"down_ms"`
		SnapshotEntries  int64   `json:"snapshot_entries_loaded"`
		SnapshotWarmHits int64   `json:"snapshot_warm_hits"`
	} `json:"victim"`
	ShardStates map[string]string    `json:"shard_states"`
	Cluster     rolagdapi.CacheStats `json:"cluster"`
	HitRate     float64              `json:"hit_rate"`
	Parity      struct {
		Checked    int64 `json:"checked"`
		Mismatched int64 `json:"mismatched"`
	} `json:"parity"`
	Gates struct {
		Parity       bool `json:"parity"`
		Availability bool `json:"availability"`
		WarmRestart  bool `json:"warm_restart"`
	} `json:"gates"`
}

// chaosConfig carries the -chaos* flags into runChaos.
type chaosConfig struct {
	shards, workers, n, requests int
	seed                         int64
	rate, zipfS                  float64
	netProb, killFrac            float64
	restartDelay, snapInterval   time.Duration
	minAvailability              float64
	timeout                      time.Duration
	out                          string
}

// chaosShard is one restartable rolagd replica: crash() kills it like a
// dead process (listener dropped, no drain, no goodbye snapshot) and
// start() brings it back on the same port with the same snapshot path.
type chaosShard struct {
	name     string
	addr     string // fixed after the first listen
	snapPath string
	cfg      *chaosConfig
	peers    map[string]string
	logger   *slog.Logger

	mu  sync.Mutex
	d   *daemon.Daemon
	srv *http.Server
}

// start builds a fresh daemon and serves it. ln is the pre-bound
// listener on first start (membership URLs must exist before any daemon
// is built); nil relistens on the shard's recorded address.
func (s *chaosShard) start(ln net.Listener) error {
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", s.addr)
		if err != nil {
			return fmt.Errorf("restart %s on %s: %w", s.name, s.addr, err)
		}
	}
	s.addr = ln.Addr().String()
	d := daemon.New(daemon.Config{
		Engine:           service.Config{Workers: s.cfg.workers},
		RequestCap:       s.cfg.timeout,
		Log:              s.logger,
		ShardID:          s.name,
		Peers:            s.peers,
		SnapshotPath:     s.snapPath,
		SnapshotInterval: s.cfg.snapInterval,
	})
	srv := &http.Server{Handler: d.Handler()}
	s.mu.Lock()
	s.d, s.srv = d, srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

// crash drops the listener (in-flight connections die) and abandons the
// daemon without draining — the periodic snapshot on disk is now the
// only memory this shard has.
func (s *chaosShard) crash() {
	s.mu.Lock()
	d, srv := s.d, s.srv
	s.mu.Unlock()
	srv.Close()
	d.Crash()
}

// daemon returns the currently-serving daemon (the restarted one after
// a crash-restart cycle).
func (s *chaosShard) daemon() *daemon.Daemon {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

func runChaos(cfg chaosConfig) {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))

	res := &ChaosResult{Schema: ChaosSchema}
	res.Config.Shards = cfg.shards
	res.Config.Workers = cfg.workers
	res.Config.CorpusN = cfg.n
	res.Config.Seed = cfg.seed
	res.Config.Requests = cfg.requests
	res.Config.Rate = cfg.rate
	res.Config.ZipfS = cfg.zipfS
	res.Config.NetFaultProb = cfg.netProb
	res.Config.KillFrac = cfg.killFrac
	res.Config.RestartDelayMs = float64(cfg.restartDelay) / float64(time.Millisecond)
	res.Config.SnapshotInterval = cfg.snapInterval.String()
	res.Config.MinAvailability = cfg.minAvailability

	corpus := angha.Generate(cfg.n, cfg.seed)
	refIR := serialReference(corpus, cfg.workers, logger)

	snapDir, err := os.MkdirTemp("", "rolag-chaos-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(snapDir)

	// Restartable shards: bind every port first so the membership map
	// exists before any daemon starts.
	lns := make([]net.Listener, cfg.shards)
	peers := make(map[string]string, cfg.shards)
	shards := make([]*chaosShard, cfg.shards)
	for i := range shards {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		lns[i] = ln
		name := fmt.Sprintf("shard-%c", 'a'+i)
		shards[i] = &chaosShard{
			name:     name,
			addr:     ln.Addr().String(),
			snapPath: filepath.Join(snapDir, name+".snapshot"),
			cfg:      &cfg,
			logger:   logger,
		}
		peers[name] = "http://" + ln.Addr().String()
	}
	byName := make(map[string]*chaosShard, cfg.shards)
	hostSite := make(map[string]string, cfg.shards)
	for i, s := range shards {
		s.peers = peers
		byName[s.name] = s
		hostSite[s.addr] = faultpoint.NetSite(s.name)
		if err := s.start(lns[i]); err != nil {
			fatal(err)
		}
	}

	// Arm the network. Only "net:" sites fire — the engine's own fault
	// sites stay dark, so a wrong byte can only come from the cluster.
	faultpoint.EnableSites(faultpoint.NetSitePrefix, faultpoint.Options{
		Seed:  cfg.seed,
		Prob:  cfg.netProb,
		Kinds: []faultpoint.Kind{faultpoint.KindStall, faultpoint.KindError, faultpoint.KindDrop},
		Stall: 40 * time.Millisecond,
	})
	defer faultpoint.Reset()

	// The router crosses the same faulty links as real traffic, probes
	// fast enough to notice the crash within a few hundred ms, and
	// hedges around stalls and blackholes.
	rt, err := cluster.New(cluster.Config{
		Shards: peers,
		Log:    logger,
		HTTPClient: &http.Client{
			Timeout: cfg.timeout,
			Transport: &faultpoint.Transport{SiteFor: func(req *http.Request) string {
				return hostSite[req.URL.Host]
			}},
		},
		ProbeInterval: 150 * time.Millisecond,
		ProbeTimeout:  300 * time.Millisecond,
		DownAfter:     2,
		Hedge:         true,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go (&http.Server{Handler: rt.Handler()}).Serve(rln)
	client := &rolagdapi.Client{BaseURL: "http://" + rln.Addr().String()}

	// The victim is the shard owning the hottest zipf key (index 0): the
	// crash hits the busiest slice of the keyspace, and the hot key's
	// presence in the victim's snapshot makes warm hits observable fast.
	victim := byName[rt.Owner(keyFor(&corpus[0]))]
	res.Victim.Shard = victim.name
	killAt := int(cfg.killFrac * float64(cfg.requests))
	if killAt < 1 {
		killAt = 1
	}
	res.Victim.KilledAtRequest = killAt

	zrng := rand.New(rand.NewSource(cfg.seed + 1))
	zipf := rand.NewZipf(zrng, cfg.zipfS, 1, uint64(cfg.n-1))
	arng := rand.New(rand.NewSource(cfg.seed + 2))

	var (
		mu        sync.Mutex
		latencies []float64
		wg        sync.WaitGroup

		completed, errs, degraded atomic.Int64
		failovers, checked        atomic.Int64
		mismatched, downMs        atomic.Int64
	)
	start := time.Now()
	for i := 0; i < cfg.requests; i++ {
		time.Sleep(time.Duration(arng.ExpFloat64() / cfg.rate * float64(time.Second)))
		if i == killAt {
			// Make sure the victim has at least one periodic snapshot on
			// disk (its only memory), then kill it un-drained and schedule
			// the restart while traffic keeps flowing.
			waitForSnapshot(victim, 5*time.Second)
			killed := time.Now()
			victim.crash()
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(cfg.restartDelay)
				if err := victim.start(nil); err != nil {
					fatal(err)
				}
				downMs.Store(int64(time.Since(killed) / time.Millisecond))
			}()
		}
		idx := int(zipf.Uint64())
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			defer cancel()
			t0 := time.Now()
			resp, err := client.Compile(ctx, &rolagdapi.CompileRequest{Source: corpus[idx].Src})
			lat := time.Since(t0).Seconds() * 1000
			if err != nil {
				errs.Add(1)
				return
			}
			completed.Add(1)
			mu.Lock()
			latencies = append(latencies, lat)
			mu.Unlock()
			if resp.Degraded {
				degraded.Add(1)
				for _, p := range resp.DegradedPasses {
					if p == cluster.FailoverPass {
						failovers.Add(1)
						break
					}
				}
			}
			// Unlike the benchmark, chaos checks parity on failed-over
			// responses too: network failover must never change bytes.
			// Only engine-level degradation (a skipped pass under a real
			// pass fault) legitimately alters output, and no engine
			// faults are armed here — so everything is checked unless
			// degraded by something other than router failover.
			if engineDegraded(resp) {
				return
			}
			checked.Add(1)
			if resp.IR != refIR[idx] {
				mismatched.Add(1)
				fmt.Fprintf(os.Stderr, "rolag-loadgen: PARITY VIOLATION on corpus[%d]\n", idx)
			}
		}(idx)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	res.Issued = int64(cfg.requests)
	res.Completed = completed.Load()
	res.Errors = errs.Load()
	res.Availability = float64(res.Completed) / float64(res.Issued)
	res.Degraded = degraded.Load()
	res.Failovers = failovers.Load()
	res.Parity.Checked = checked.Load()
	res.Parity.Mismatched = mismatched.Load()
	res.Victim.DownMs = float64(downMs.Load())
	sort.Float64s(latencies)
	res.Latency.P50Ms = pct(latencies, 50)
	res.Latency.P99Ms = pct(latencies, 99)
	res.Latency.MaxMs = pct(latencies, 100)
	res.Hedge.PrimaryWins, res.Hedge.HedgeWins, res.Hedge.BothFailed = rt.HedgeTotals()
	res.ShardStates = make(map[string]string)
	for name, st := range rt.ShardStates() {
		res.ShardStates[name] = st.String()
	}

	// The restarted victim's own counters prove the warm restart: it
	// loaded entries from its pre-crash snapshot and served hits out of
	// them.
	vm := victim.daemon().Engine().Metrics()
	res.Victim.SnapshotEntries = vm.SnapshotEntries
	res.Victim.SnapshotWarmHits = vm.SnapshotWarmHits

	// Fleet-wide counters through the router (the faulty links may hide
	// a shard from one aggregation attempt; stats are informational).
	faultpoint.Reset()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if cs, err := client.CacheStats(ctx); err == nil {
		res.Cluster = *cs
		res.HitRate = cs.HitRate()
	}
	cancel()

	res.Gates.Parity = res.Parity.Mismatched == 0 && res.Parity.Checked > 0
	res.Gates.Availability = res.Availability >= cfg.minAvailability
	res.Gates.WarmRestart = res.Victim.SnapshotEntries > 0 && res.Victim.SnapshotWarmHits > 0

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if cfg.out == "" {
		os.Stdout.Write(data)
	} else {
		if dir := filepath.Dir(cfg.out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "rolag-loadgen -chaos: %d/%d ok (availability %.4f), parity %d/%d, "+
		"%d degraded (%d failovers), hedge p/h/f %d/%d/%d, victim %s down %.0fms "+
		"(snapshot entries %d, warm hits %d)\n",
		res.Completed, res.Issued, res.Availability,
		res.Parity.Checked-res.Parity.Mismatched, res.Parity.Checked,
		res.Degraded, res.Failovers,
		res.Hedge.PrimaryWins, res.Hedge.HedgeWins, res.Hedge.BothFailed,
		res.Victim.Shard, res.Victim.DownMs,
		res.Victim.SnapshotEntries, res.Victim.SnapshotWarmHits)

	failed := false
	if !res.Gates.Parity {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: GATE parity failed: %d mismatched of %d checked\n",
			res.Parity.Mismatched, res.Parity.Checked)
		failed = true
	}
	if !res.Gates.Availability {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: GATE availability failed: %.4f < %.4f\n",
			res.Availability, cfg.minAvailability)
		failed = true
	}
	if !res.Gates.WarmRestart {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: GATE warm-restart failed: victim loaded %d entries, served %d warm hits\n",
			res.Victim.SnapshotEntries, res.Victim.SnapshotWarmHits)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// keyFor computes a corpus function's routing key the way the router
// does.
func keyFor(fn *angha.Function) string {
	sreq, err := (&rolagdapi.CompileRequest{Source: fn.Src}).ToService()
	if err != nil {
		fatal(err)
	}
	return service.Key(&sreq)
}

// engineDegraded reports whether a response is degraded by anything
// other than router failover — the only degradation that may change
// bytes and is therefore parity-exempt.
func engineDegraded(resp *rolagdapi.CompileResponse) bool {
	if !resp.Degraded {
		return false
	}
	for _, p := range resp.DegradedPasses {
		if p != cluster.FailoverPass {
			return true
		}
	}
	return false
}

// waitForSnapshot blocks until the shard has written at least one
// periodic snapshot, forcing one if the ticker hasn't fired in time —
// the crash must not be allowed to outrun the victim's only memory.
func waitForSnapshot(s *chaosShard, within time.Duration) {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if s.daemon().Engine().Metrics().SnapshotSaves > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := s.daemon().SaveSnapshotNow(); err != nil {
		fatal(fmt.Errorf("forcing victim snapshot: %w", err))
	}
}
