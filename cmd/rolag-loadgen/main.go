// Command rolag-loadgen is the reproducible cluster benchmark: it
// spawns a local N-shard rolagd cluster plus a rolag-router on loopback
// ports, drives open-loop zipfian traffic from the synthesized
// AnghaBench corpus at a configurable arrival rate, and reports request
// latency (p50/p99), aggregate functions/sec, and the cluster-wide
// cache hit rate — taken from the daemons' own /v1/cachestats, not from
// client-side bookkeeping — as JSON.
//
// Usage:
//
//	rolag-loadgen [-shards 3] [-workers 2] [-n 400] [-seed 20220402]
//	              [-requests 2000] [-rate 200] [-zipf-s 1.2]
//	              [-direct-frac 0.25] [-timeout 30s]
//	              [-out results/BENCH_cluster.json]
//	              [-require-peer-hits]
//	              [-check baseline.json] [-max-slowdown 3] [-hit-rate-slack 0.2]
//	              [-chaos [-chaos-net-prob 0.02] [-chaos-kill-frac 0.35]
//	               [-chaos-restart-delay 600ms] [-chaos-snapshot-interval 250ms]
//	               [-min-availability 0.99]]
//
// Traffic shape: arrivals are Poisson at -rate requests/sec (open loop:
// a slow cluster does not slow the generator down, so overload shows up
// as latency, exactly as in production). Keys are drawn zipfian over the
// corpus, so a popular head repeats while a long tail stays cold. A
// -direct-frac fraction of requests bypasses the router and hits a
// round-robin shard directly, the way clients behind a dumb L4 balancer
// would — those requests exercise the fetch-on-miss peer cache tier
// (the non-owner asks the key's home shard before compiling).
//
// Every non-degraded response is compared byte-for-byte against a
// serial reference daemon compiled from the same corpus; any mismatch
// fails the run. -require-peer-hits additionally fails the run when the
// fleet reports zero peer-cache hits. With -check, p99 latency,
// functions/sec, and the cluster hit rate are gated against a committed
// baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/cluster"
	"rolag/internal/daemon"
	"rolag/internal/rolagdapi"
	"rolag/internal/service"
	"rolag/internal/workloads/angha"
)

// Schema identifies the BENCH_cluster.json layout; bump on breaking
// changes so -check refuses to compare across layouts.
const Schema = "rolag/cluster-bench/v1"

// Result is the machine-readable record written to -out.
type Result struct {
	Schema string `json:"schema"`
	Config struct {
		Shards     int     `json:"shards"`
		Workers    int     `json:"workers"`
		CorpusN    int     `json:"corpus_n"`
		Seed       int64   `json:"seed"`
		Requests   int     `json:"requests"`
		Rate       float64 `json:"rate_per_sec"`
		ZipfS      float64 `json:"zipf_s"`
		DirectFrac float64 `json:"direct_frac"`
	} `json:"config"`
	WallSeconds        float64 `json:"wall_seconds"`
	Completed          int64   `json:"completed"`
	Errors             int64   `json:"errors"`
	Degraded           int64   `json:"degraded"`
	Failovers          int64   `json:"failovers"`
	FunctionsPerSecond float64 `json:"functions_per_second"`
	Latency            struct {
		P50Ms float64 `json:"p50_ms"`
		P90Ms float64 `json:"p90_ms"`
		P99Ms float64 `json:"p99_ms"`
		MaxMs float64 `json:"max_ms"`
	} `json:"latency"`
	// Cluster mirrors the router's /v1/cachestats aggregate — the hit
	// rate the daemons themselves report, not one inferred client-side.
	Cluster rolagdapi.CacheStats `json:"cluster"`
	HitRate float64              `json:"hit_rate"`
	Parity  struct {
		Checked    int64 `json:"checked"`
		Mismatched int64 `json:"mismatched"`
	} `json:"parity"`
}

func main() {
	shards := flag.Int("shards", 3, "rolagd replicas to spawn")
	workers := flag.Int("workers", 2, "engine workers per shard")
	n := flag.Int("n", 400, "angha corpus size (distinct functions)")
	seed := flag.Int64("seed", 20220402, "corpus and traffic seed")
	requests := flag.Int("requests", 2000, "total requests to issue")
	rate := flag.Float64("rate", 200, "open-loop Poisson arrival rate, requests/sec")
	zipfS := flag.Float64("zipf-s", 1.2, "zipf exponent for key popularity (>1)")
	directFrac := flag.Float64("direct-frac", 0.25, "fraction of requests sent to a round-robin shard instead of the router")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	out := flag.String("out", "", "write the result JSON here (default stdout)")
	requirePeerHits := flag.Bool("require-peer-hits", false, "fail unless the fleet reports >0 peer-cache hits")
	check := flag.String("check", "", "baseline JSON to gate against (exit 1 on regression)")
	maxSlowdown := flag.Float64("max-slowdown", 3, "allowed p99 and functions/sec ratio vs the -check baseline")
	hitRateSlack := flag.Float64("hit-rate-slack", 0.2, "allowed absolute hit-rate drop vs the -check baseline")
	fleetMode := flag.Bool("fleet", false, "run the fleet-telemetry benchmark with its SLO gates instead of the main benchmark (see fleet.go)")
	traceSample := flag.Int("trace-sample", 200, "requests whose stitched traces the -fleet completeness gate samples")
	minTraceComplete := flag.Float64("min-trace-complete", 0.99, "-fleet gate: fraction of sampled traces that must stitch router + ≥1 shard")
	fleetP99Ratio := flag.Float64("fleet-p99-ratio", 3, "-fleet gate: allowed ratio between router-observed and fleet-merged p99")
	fleetP99Floor := flag.Float64("fleet-p99-floor", 50, "-fleet gate: absolute p99 disagreement allowance, ms")
	fleetTraceBuf := flag.Int("fleet-trace-buf", 65536, "per-process span ring capacity in -fleet")
	chaos := flag.Bool("chaos", false, "run the cluster chaos harness instead of the benchmark (see chaos.go)")
	chaosNetProb := flag.Float64("chaos-net-prob", 0.02, "per-link fault probability (stall/refuse/blackhole) in -chaos")
	chaosKillFrac := flag.Float64("chaos-kill-frac", 0.35, "fraction of the run after which the victim shard is crashed")
	chaosRestartDelay := flag.Duration("chaos-restart-delay", 600*time.Millisecond, "victim downtime before restart")
	chaosSnapInterval := flag.Duration("chaos-snapshot-interval", 250*time.Millisecond, "shard periodic snapshot cadence in -chaos")
	minAvailability := flag.Float64("min-availability", 0.99, "chaos gate: completed/issued must reach this")
	flag.Parse()

	if *fleetMode {
		runFleet(fleetConfig{
			shards:      *shards,
			workers:     *workers,
			n:           *n,
			seed:        *seed,
			requests:    *requests,
			rate:        *rate,
			zipfS:       *zipfS,
			timeout:     *timeout,
			out:         *out,
			sample:      *traceSample,
			minComplete: *minTraceComplete,
			p99Ratio:    *fleetP99Ratio,
			p99FloorMs:  *fleetP99Floor,
			traceBuf:    *fleetTraceBuf,
		})
		return
	}

	if *chaos {
		runChaos(chaosConfig{
			shards:          *shards,
			workers:         *workers,
			n:               *n,
			requests:        *requests,
			seed:            *seed,
			rate:            *rate,
			zipfS:           *zipfS,
			netProb:         *chaosNetProb,
			killFrac:        *chaosKillFrac,
			restartDelay:    *chaosRestartDelay,
			snapInterval:    *chaosSnapInterval,
			minAvailability: *minAvailability,
			timeout:         *timeout,
			out:             *out,
		})
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	res := &Result{Schema: Schema}
	res.Config.Shards = *shards
	res.Config.Workers = *workers
	res.Config.CorpusN = *n
	res.Config.Seed = *seed
	res.Config.Requests = *requests
	res.Config.Rate = *rate
	res.Config.ZipfS = *zipfS
	res.Config.DirectFrac = *directFrac

	corpus := angha.Generate(*n, *seed)

	// Serial reference: every distinct function through one standalone
	// daemon — the byte-level ground truth the cluster must match.
	refIR := serialReference(corpus, *workers, logger)

	// Local cluster on loopback: listeners first (membership URLs must
	// exist before any daemon is built), then daemons, then serve.
	lns := make([]net.Listener, *shards)
	peers := make(map[string]string, *shards)
	names := make([]string, *shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		lns[i] = ln
		names[i] = fmt.Sprintf("shard-%c", 'a'+i)
		peers[names[i]] = "http://" + ln.Addr().String()
	}
	daemons := make([]*daemon.Daemon, *shards)
	for i := range daemons {
		daemons[i] = daemon.New(daemon.Config{
			Engine:     service.Config{Workers: *workers},
			RequestCap: *timeout,
			Log:        logger,
			ShardID:    names[i],
			Peers:      peers,
		})
		srv := &http.Server{Handler: daemons[i].Handler()}
		go srv.Serve(lns[i])
	}
	rt, err := cluster.New(cluster.Config{Shards: peers, Log: logger})
	if err != nil {
		fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go (&http.Server{Handler: rt.Handler()}).Serve(rln)

	routerClient := &rolagdapi.Client{BaseURL: "http://" + rln.Addr().String()}
	shardClients := make([]*rolagdapi.Client, *shards)
	for i, name := range names {
		shardClients[i] = &rolagdapi.Client{BaseURL: peers[name]}
	}

	// Open-loop zipfian traffic. The pick/arrival streams are seeded so
	// the request sequence is reproducible; timing of course is not.
	zrng := rand.New(rand.NewSource(*seed + 1))
	zipf := rand.NewZipf(zrng, *zipfS, 1, uint64(*n-1))
	arng := rand.New(rand.NewSource(*seed + 2))

	var (
		mu        sync.Mutex
		latencies []float64
		wg        sync.WaitGroup

		completed, errs, degraded atomic.Int64
		failovers, checked        atomic.Int64
		mismatched                atomic.Int64
	)
	start := time.Now()
	for i := 0; i < *requests; i++ {
		// Poisson arrivals: exponential inter-arrival at the target rate.
		time.Sleep(time.Duration(arng.ExpFloat64() / *rate * float64(time.Second)))
		idx := int(zipf.Uint64())
		c := routerClient
		if zrng.Float64() < *directFrac {
			c = shardClients[i%len(shardClients)]
		}
		wg.Add(1)
		go func(idx int, c *rolagdapi.Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			t0 := time.Now()
			resp, err := c.Compile(ctx, &rolagdapi.CompileRequest{Source: corpus[idx].Src})
			lat := time.Since(t0).Seconds() * 1000
			if err != nil {
				errs.Add(1)
				return
			}
			completed.Add(1)
			mu.Lock()
			latencies = append(latencies, lat)
			mu.Unlock()
			if resp.Degraded {
				degraded.Add(1)
				for _, p := range resp.DegradedPasses {
					if p == cluster.FailoverPass {
						failovers.Add(1)
						break
					}
				}
				return // degraded results are exempt from byte parity
			}
			checked.Add(1)
			if resp.IR != refIR[idx] {
				mismatched.Add(1)
			}
		}(idx, c)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	res.Completed = completed.Load()
	res.Errors = errs.Load()
	res.Degraded = degraded.Load()
	res.Failovers = failovers.Load()
	res.Parity.Checked = checked.Load()
	res.Parity.Mismatched = mismatched.Load()
	if res.WallSeconds > 0 {
		res.FunctionsPerSecond = float64(res.Completed) / res.WallSeconds
	}
	sort.Float64s(latencies)
	res.Latency.P50Ms = pct(latencies, 50)
	res.Latency.P90Ms = pct(latencies, 90)
	res.Latency.P99Ms = pct(latencies, 99)
	res.Latency.MaxMs = pct(latencies, 100)

	// Cluster-wide counters straight from the daemons, via the router's
	// /v1/cachestats aggregation.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	cs, err := routerClient.CacheStats(ctx)
	cancel()
	if err != nil {
		fatal(fmt.Errorf("cachestats: %w", err))
	}
	res.Cluster = *cs
	res.HitRate = cs.HitRate()

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "rolag-loadgen: %d shards, %d/%d requests ok in %.1fs: "+
		"p50 %.1fms p99 %.1fms, %.0f functions/sec, hit rate %.2f (peer hits %d, misses %d), "+
		"%d degraded, parity %d/%d\n",
		*shards, res.Completed, *requests, res.WallSeconds,
		res.Latency.P50Ms, res.Latency.P99Ms, res.FunctionsPerSecond,
		res.HitRate, cs.PeerHits, cs.PeerMisses,
		res.Degraded, res.Parity.Checked-res.Parity.Mismatched, res.Parity.Checked)

	failed := false
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: %d requests failed\n", res.Errors)
		failed = true
	}
	if res.Parity.Mismatched > 0 {
		fmt.Fprintf(os.Stderr, "rolag-loadgen: %d non-degraded responses differ from the serial reference\n", res.Parity.Mismatched)
		failed = true
	}
	if *requirePeerHits && cs.PeerHits == 0 {
		fmt.Fprintln(os.Stderr, "rolag-loadgen: fleet reports zero peer-cache hits (-require-peer-hits)")
		failed = true
	}
	if *check != "" {
		if err := gate(res, *check, *maxSlowdown, *hitRateSlack); err != nil {
			fmt.Fprintf(os.Stderr, "rolag-loadgen: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// serialReference compiles every corpus function once on a standalone
// daemon over real HTTP — the same wire path the cluster serves.
func serialReference(corpus []angha.Function, workers int, logger *slog.Logger) []string {
	d := daemon.New(daemon.Config{
		Engine:     service.Config{Workers: workers},
		RequestCap: time.Minute,
		Log:        logger,
	})
	defer d.Close(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	c := &rolagdapi.Client{BaseURL: "http://" + ln.Addr().String()}

	out := make([]string, len(corpus))
	for i, fn := range corpus {
		resp, err := c.Compile(context.Background(), &rolagdapi.CompileRequest{Source: fn.Src})
		if err != nil {
			fatal(fmt.Errorf("serial reference %s: %w", fn.Name, err))
		}
		out[i] = resp.IR
	}
	return out
}

// pct reads the p-th percentile from an ascending slice.
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p / 100 * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// gate compares the run against a committed baseline: p99 latency and
// functions/sec may move by at most maxSlowdown×, the daemon-reported
// cluster hit rate by at most hitRateSlack absolute.
func gate(res *Result, baselinePath string, maxSlowdown, hitRateSlack float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Result
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != res.Schema {
		return fmt.Errorf("baseline schema %q != run schema %q", base.Schema, res.Schema)
	}
	if base.Latency.P99Ms > 0 {
		ratio := res.Latency.P99Ms / base.Latency.P99Ms
		fmt.Fprintf(os.Stderr, "rolag-loadgen: p99 %.1fms vs baseline %.1fms (ratio %.2fx, limit %.2fx)\n",
			res.Latency.P99Ms, base.Latency.P99Ms, ratio, maxSlowdown)
		if ratio > maxSlowdown {
			return fmt.Errorf("p99 regression: %.2fx over baseline (limit %.2fx)", ratio, maxSlowdown)
		}
	}
	if base.FunctionsPerSecond > 0 {
		ratio := base.FunctionsPerSecond / res.FunctionsPerSecond
		fmt.Fprintf(os.Stderr, "rolag-loadgen: %.0f functions/sec vs baseline %.0f (ratio %.2fx, limit %.2fx)\n",
			res.FunctionsPerSecond, base.FunctionsPerSecond, ratio, maxSlowdown)
		if ratio > maxSlowdown {
			return fmt.Errorf("throughput regression: %.2fx under baseline (limit %.2fx)", ratio, maxSlowdown)
		}
	}
	if drop := base.HitRate - res.HitRate; drop > hitRateSlack {
		return fmt.Errorf("hit-rate regression: %.2f vs baseline %.2f (slack %.2f)", res.HitRate, base.HitRate, hitRateSlack)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rolag-loadgen: %v\n", err)
	os.Exit(1)
}
