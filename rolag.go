// Package rolag is the public facade of the RoLAG reproduction: it
// compiles mini-C source to SSA IR, runs the canonicalization pipeline,
// optionally unrolls loops, applies a loop-(re)rolling technique, and
// reports code sizes under the project's cost models.
//
// The implementation follows "Loop Rolling for Code Size Reduction",
// Rocha, Petoumenos, Franke, Bhatotia, O'Boyle — CGO 2022. The primary
// contribution lives in internal/rolag; the baseline from §II in
// internal/reroll; every supporting substrate (IR, frontend, interpreter,
// cost model, unroller) is implemented from scratch in this repository.
package rolag

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rolag/internal/cc"
	"rolag/internal/costmodel"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/obs"
	"rolag/internal/passes"
	"rolag/internal/reroll"
	rl "rolag/internal/rolag"
	"rolag/internal/unroll"
)

// Remark re-exports one structured optimization remark (see
// internal/obs): a typed record of a rolling decision with
// function/block/instruction provenance. Collected when
// Config.Remarks is set.
type Remark = obs.Remark

// Optimization selects the loop-(re)rolling technique to apply.
type Optimization int

// Available techniques.
const (
	// OptNone applies no rolling (the evaluation baseline).
	OptNone Optimization = iota
	// OptLLVMReroll applies the LLVM-style loop rerolling of §II.
	OptLLVMReroll
	// OptRoLAG applies the paper's loop rolling for straight-line code.
	OptRoLAG
)

func (o Optimization) String() string {
	switch o {
	case OptNone:
		return "none"
	case OptLLVMReroll:
		return "llvm-reroll"
	case OptRoLAG:
		return "rolag"
	}
	return "unknown"
}

// Options re-exports the RoLAG configuration knobs.
type Options = rl.Options

// Stats re-exports the RoLAG run statistics.
type Stats = rl.Stats

// Degraded re-exports the fail-soft degradation report: which pass
// executions were rolled back and why. See Config.FailSoft.
type Degraded = passes.Degraded

// PassSkip re-exports one entry of a Degraded report.
type PassSkip = passes.Skip

// Guard re-exports the sandbox admission interface (the service
// engine's circuit breakers implement it).
type Guard = passes.Guard

// DefaultOptions returns the paper's full configuration.
func DefaultOptions() *Options { return rl.DefaultOptions() }

// NoSpecialNodes returns the Fig. 19 ablation configuration.
func NoSpecialNodes() *Options { return rl.NoSpecialNodes() }

// Extensions returns the defaults plus the beyond-paper extensions
// (select-based min/max reductions, the paper's §V.C future work).
func Extensions() *Options { return rl.Extensions() }

// Config describes one compilation.
type Config struct {
	// Name is the module name (defaults to "module").
	Name string
	// Unroll, when >= 2, force-unrolls every canonical inner loop by
	// this factor before optimizing (the TSVC methodology of §V.C).
	Unroll int
	// Opt selects the rolling technique.
	Opt Optimization
	// Options configures RoLAG when Opt == OptRoLAG (nil = defaults).
	Options *Options
	// Flatten runs the loop-flattening cleanup after RoLAG, collapsing
	// the inner-loop-in-outer-loop nests left behind when an unrolled
	// loop is rerolled (the improvement §V.C of the paper suggests).
	Flatten bool
	// SkipCleanup disables the post-roll cleanup pipeline.
	SkipCleanup bool
	// CloneInput makes Optimize work on a deep copy of the input module,
	// leaving the caller's module untouched. Result.Module is then owned
	// exclusively by the caller. The compilation service sets this so
	// cached results are immutable.
	CloneInput bool
	// FailSoft runs every pass (and RoLAG itself, per function) under a
	// checkpointed sandbox: a pass that panics, exceeds the per-pass
	// budget, or breaks the IR verifier is rolled back and skipped, the
	// rest of the pipeline continues, and Result.Degraded records what
	// was lost. The output is then correct but potentially larger than a
	// fully healthy pipeline would produce. Frontend errors and a
	// corrupt final module still fail hard.
	FailSoft bool
	// PassBudget is the fail-soft per-pass wall-clock budget
	// (0 = passes.DefaultPassBudget). Ignored unless FailSoft is set.
	PassBudget time.Duration
	// Guard, when set with FailSoft, is consulted before and notified
	// after every sandboxed pass execution; the service engine passes
	// its per-pass circuit breakers here. With Parallelism > 1 the Guard
	// is consulted from several goroutines at once, so implementations
	// must be safe for concurrent use (the engine's breakers are).
	Guard Guard
	// Remarks collects structured optimization remarks: every rolling
	// decision (seed selection, per-node alignment, scheduling
	// rejection, cost verdict, reroll outcome) lands in Result.Remarks
	// with function/block/instruction provenance. The stream is
	// deterministic — byte-identical across runs and across Parallelism
	// values (per-function collectors merge in function order) — and
	// under FailSoft remarks from rolled-back executions are discarded
	// with the execution, so a "rolled" remark exists iff the roll is in
	// the output. Off (the default) the hot path pays nil checks only.
	Remarks bool
	// Parallelism caps how many functions each pipeline stage optimizes
	// concurrently: 0 or 1 runs serially, n > 1 uses up to n workers,
	// and a negative value uses GOMAXPROCS. Every stage is
	// function-local — RoLAG's constant-table globals are staged in
	// per-function sink modules and spliced into the real module in
	// function order, replaying the serial name sequence — so the output
	// module is byte-identical for every Parallelism value, and
	// fail-soft degradation reports merge in function order.
	Parallelism int
}

// workers resolves Parallelism to a concrete worker count.
func (cfg Config) workers() int {
	switch {
	case cfg.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case cfg.Parallelism <= 1:
		return 1
	default:
		return cfg.Parallelism
	}
}

// Result is the outcome of one compilation.
type Result struct {
	// Module is the final IR.
	Module *ir.Module
	// SizeBefore and SizeAfter are cost-model text sizes (in bytes)
	// before and after the rolling technique ran, under the profit
	// (TTI-style) model.
	SizeBefore, SizeAfter int
	// BinaryBefore and BinaryAfter are the corresponding sizes under the
	// finer "binary" measurement model, mirroring the paper's
	// object-file measurements.
	BinaryBefore, BinaryAfter int
	// Stats holds RoLAG statistics (nil unless Opt == OptRoLAG).
	Stats *Stats
	// Rerolled counts loops rerolled by the baseline (Opt ==
	// OptLLVMReroll).
	Rerolled int
	// Degraded is the fail-soft degradation report: nil when every pass
	// took effect (or Config.FailSoft was off), otherwise the list of
	// pass executions that were rolled back and skipped.
	Degraded *Degraded
	// Remarks holds the optimization remarks in deterministic emission
	// order (nil unless Config.Remarks).
	Remarks []Remark
}

// Reduction returns the relative binary-size reduction in percent
// (positive = smaller).
func (r *Result) Reduction() float64 {
	if r.BinaryBefore == 0 {
		return 0
	}
	return 100 * float64(r.BinaryBefore-r.BinaryAfter) / float64(r.BinaryBefore)
}

// Compile parses mini-C source and runs the canonicalization pipeline,
// returning the IR module without any rolling applied.
func Compile(src, name string) (*ir.Module, error) {
	if name == "" {
		name = "module"
	}
	m, err := cc.Compile(src, name)
	if err != nil {
		return nil, err
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("rolag: internal error: %w", err)
	}
	return m, nil
}

// Build compiles src and applies the configured pipeline.
//
// Unless cfg.CloneInput is set, the returned Result.Module is the very
// module the pipeline mutated; see Optimize for the aliasing contract.
func Build(src string, cfg Config) (*Result, error) {
	return BuildContext(context.Background(), src, cfg)
}

// BuildContext is Build with a deadline/cancellation context. The
// context is checked between pipeline stages and between functions, so
// a cancelled compilation returns ctx.Err() promptly without leaving
// the caller with a half-transformed module it should keep using.
//
// With cfg.FailSoft the canonicalization pipeline already runs under
// the sandbox; frontend (parse/typecheck/lowering) errors still fail
// hard, because without IR there is nothing correct to fall back to.
func BuildContext(ctx context.Context, src string, cfg Config) (*Result, error) {
	if !cfg.FailSoft {
		m, err := Compile(src, cfg.Name)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return optimizeContext(ctx, m, cfg, nil)
	}
	name := cfg.Name
	if name == "" {
		name = "module"
	}
	m, err := cc.Compile(src, name)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("rolag: internal error: %w", err)
	}
	sb := cfg.sandbox(obs.TraceFrom(ctx))
	if err := runStandard(ctx, m, cfg, sb); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return optimizeContext(ctx, m, cfg, sb)
}

// sandbox builds one fail-soft sandbox; tr lets sandboxed pass
// executions show up as spans on the request's trace.
func (cfg Config) sandbox(tr obs.TraceContext) *passes.Sandbox {
	return &passes.Sandbox{Budget: cfg.PassBudget, Guard: cfg.Guard, Trace: tr}
}

// Optimize applies the configured unrolling and rolling technique to a
// compiled module.
//
// Aliasing: by default the module is transformed IN PLACE and
// Result.Module is the same pointer as the input — callers that need
// the pre-optimization module, or that cache and share Results, must
// either clone first (ir.CloneModule) or set cfg.CloneInput, which
// makes Optimize transform a private deep copy and leave the input
// untouched.
func Optimize(m *ir.Module, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), m, cfg)
}

// OptimizeContext is Optimize with a deadline/cancellation context,
// checked between pipeline stages and between functions. When the
// context expires mid-run the input module may already be partially
// transformed (unless cfg.CloneInput is set); the error tells the
// caller to discard it.
func OptimizeContext(ctx context.Context, m *ir.Module, cfg Config) (*Result, error) {
	var sb *passes.Sandbox
	if cfg.FailSoft {
		sb = cfg.sandbox(obs.TraceFrom(ctx))
	}
	return optimizeContext(ctx, m, cfg, sb)
}

// optimizeContext is the shared pipeline body. With sb == nil it is the
// fail-hard path: any pass failure propagates (panics unwind, a broken
// module fails the final Verify). With a sandbox every transformation
// stage runs checkpointed and rollback-protected; the final Verify
// remains as a fail-hard backstop, but can only trip if the sandbox
// itself has a bug, since each committed execution was verified.
func optimizeContext(ctx context.Context, m *ir.Module, cfg Config, sb *passes.Sandbox) (*Result, error) {
	if cfg.CloneInput {
		m = ir.CloneModule(m)
	}
	workers := cfg.workers()
	tr := obs.TraceFrom(ctx)
	if cfg.Unroll >= 2 {
		st := obs.Now()
		subs, pick := stageSandboxes(cfg, sb, tr, len(m.Funcs), workers)
		err := forEachFunc(ctx, m, workers, func(i int, f *ir.Func) {
			if s := pick(i); s != nil {
				k := cfg.Unroll
				s.RunShadow("unroll", f, func(sf *ir.Func) bool {
					return unroll.UnrollAll(sf, k) > 0
				})
			} else {
				unroll.UnrollAll(f, cfg.Unroll)
			}
		})
		absorbAll(sb, subs)
		obs.EndSpan(tr, "stage:unroll", st, m.Name)
		if err != nil {
			return nil, err
		}
		if err := runStandard(ctx, m, cfg, sb); err != nil {
			return nil, err
		}
		if sb == nil {
			if err := m.Verify(); err != nil {
				return nil, fmt.Errorf("rolag: after unroll: %w", err)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	profit := costmodel.Default()
	binary := costmodel.Binary()
	res := &Result{
		Module:       m,
		SizeBefore:   profit.Module(m),
		BinaryBefore: binary.Module(m),
	}
	// Per-function remark collectors; merged into res.Remarks in
	// function order after each stage, so the stream is byte-identical
	// for every Parallelism value. Under fail-soft, a function's
	// collector is kept only when its execution committed — remarks
	// from rolled-back attempts vanish with the rollback.
	var recs []*obs.Collector
	if cfg.Remarks {
		recs = make([]*obs.Collector, len(m.Funcs))
	}
	// newRec hands the per-function recorder to the optimizer; it stays
	// nil — zero hot-path allocations — unless remarks or tracing are on.
	newRec := func() (*obs.Collector, *obs.Recorder) {
		if recs == nil && !tr.Active() {
			return nil, nil
		}
		var c *obs.Collector
		if recs != nil {
			c = &obs.Collector{}
		}
		return c, &obs.Recorder{Remarks: c, Trace: tr}
	}
	mergeRemarks := func() {
		for i, c := range recs {
			if c != nil {
				res.Remarks = append(res.Remarks, c.Remarks()...)
				recs[i] = nil
			}
		}
	}
	switch cfg.Opt {
	case OptNone:
	case OptLLVMReroll:
		st := obs.Now()
		rerolled := make([]int, len(m.Funcs))
		subs, pick := stageSandboxes(cfg, sb, tr, len(m.Funcs), workers)
		err := forEachFunc(ctx, m, workers, func(i int, f *ir.Func) {
			c, rec := newRec()
			if s := pick(i); s != nil {
				// n is fresh per function and only read when the runner
				// committed, so an abandoned (timed-out) goroutine writing
				// it later races with nothing; the same holds for the
				// private collector c.
				var n int
				if _, ok := s.RunShadow("reroll", f, func(sf *ir.Func) bool {
					n = reroll.RerollFuncObs(sf, rec)
					return n > 0
				}); ok {
					rerolled[i] = n
					if recs != nil {
						recs[i] = c
					}
				}
			} else {
				rerolled[i] = reroll.RerollFuncObs(f, rec)
				if recs != nil {
					recs[i] = c
				}
			}
		})
		absorbAll(sb, subs)
		obs.EndSpan(tr, "stage:reroll", st, m.Name)
		if err != nil {
			return nil, err
		}
		for _, n := range rerolled {
			res.Rerolled += n
		}
		mergeRemarks()
	case OptRoLAG:
		spanStart := obs.Now()
		opts := cfg.Options
		if opts == nil {
			opts = rl.DefaultOptions()
		}
		res.Stats = rl.NewStats()
		// Parallel workers stage their constant-table globals in private
		// sink modules; the sinks are adopted into m in function order
		// below, replaying the serial global-name sequence.
		stats := make([]*rl.Stats, len(m.Funcs))
		var sinks []*ir.Module
		if workers > 1 {
			sinks = make([]*ir.Module, len(m.Funcs))
		}
		subs, pick := stageSandboxes(cfg, sb, tr, len(m.Funcs), workers)
		err := forEachFunc(ctx, m, workers, func(i int, f *ir.Func) {
			sink := m
			if sinks != nil {
				sink = ir.NewModule(m.Name + ".stage")
				sinks[i] = sink
			}
			c, rec := newRec()
			if s := pick(i); s != nil {
				// RoLAG appends constant-table globals, so it runs in place
				// (same goroutine) behind a snapshot rather than on an
				// abandonable shadow; see Sandbox.RunInPlaceIn.
				var st *rl.Stats
				if _, ok := s.RunInPlaceIn("rolag", f, sink, func(sf *ir.Func) bool {
					st = rl.RollFuncInto(sf, opts, nil, sink, rec)
					return st.LoopsRolled > 0
				}); ok && st != nil {
					stats[i] = st
					if recs != nil {
						recs[i] = c
					}
				}
			} else {
				stats[i] = rl.RollFuncInto(f, opts, nil, sink, rec)
				if recs != nil {
					recs[i] = c
				}
			}
		})
		for _, sink := range sinks {
			if sink != nil {
				rl.AdoptStagedGlobals(m, sink)
			}
		}
		absorbAll(sb, subs)
		obs.EndSpan(tr, "stage:rolag", spanStart, m.Name)
		if err != nil {
			return nil, err
		}
		for _, st := range stats {
			if st != nil {
				res.Stats.Add(st)
			}
		}
		mergeRemarks()
		if cfg.Flatten {
			fst := obs.Now()
			fsubs, fpick := stageSandboxes(cfg, sb, tr, len(m.Funcs), workers)
			err := forEachFunc(ctx, m, workers, func(i int, f *ir.Func) {
				if s := fpick(i); s != nil {
					s.RunShadow("flatten", f, passes.Flatten)
				} else {
					passes.Flatten(f)
				}
			})
			absorbAll(sb, fsubs)
			obs.EndSpan(tr, "stage:flatten", fst, m.Name)
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("rolag: unknown optimization %d", cfg.Opt)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !cfg.SkipCleanup && cfg.Opt != OptNone {
		st := obs.Now()
		if err := runStandard(ctx, m, cfg, sb); err != nil {
			return nil, err
		}
		obs.EndSpan(tr, "stage:cleanup", st, m.Name)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("rolag: after %s: %w", cfg.Opt, err)
	}
	res.SizeAfter = profit.Module(m)
	res.BinaryAfter = binary.Module(m)
	if sb != nil {
		res.Degraded = sb.Report()
	}
	return res, nil
}

// runStandard runs the canonicalization pipeline over the module,
// sandboxed when sb is set and across cfg.workers() functions at a time
// when parallelism is enabled.
func runStandard(ctx context.Context, m *ir.Module, cfg Config, sb *passes.Sandbox) error {
	p := passes.Standard()
	workers := cfg.workers()
	tr := obs.TraceFrom(ctx)
	if workers <= 1 {
		if sb != nil {
			p.RunSandboxed(m, sb)
		} else {
			p.Run(m)
		}
		return nil
	}
	subs, pick := stageSandboxes(cfg, sb, tr, len(m.Funcs), workers)
	err := forEachFunc(ctx, m, workers, func(i int, f *ir.Func) {
		if s := pick(i); s != nil {
			p.RunFuncSandboxed(f, s)
		} else {
			p.RunFunc(f)
		}
	})
	absorbAll(sb, subs)
	return err
}

// forEachFunc applies work to every defined function of m: in index
// order on the calling goroutine when workers <= 1, otherwise across a
// bounded worker pool. work must confine its effects to the function
// itself plus caller state indexed by i — the module is shared. The
// context is checked before each function. A panic in any worker is
// re-raised on the caller (lowest function index wins), preserving the
// fail-hard contract; the original stack is lost but the value is not.
func forEachFunc(ctx context.Context, m *ir.Module, workers int, work func(i int, f *ir.Func)) error {
	funcs := m.Funcs
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers <= 1 {
		for i, f := range funcs {
			if f.IsDecl() {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			work(i, f)
		}
		return nil
	}
	errs := make([]error, len(funcs))
	panics := make([]any, len(funcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(funcs) {
					return
				}
				f := funcs[i]
				if f.IsDecl() {
					continue
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					work(i, f)
				}()
			}
		}()
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// stageSandboxes hands out the sandbox each function of one pipeline
// stage runs under. Fail-hard stages get nil; serial fail-soft stages
// share sb; parallel fail-soft stages get one private sandbox per
// function (a Sandbox is not safe for concurrent use), which absorbAll
// merges back into sb in function order after the stage.
func stageSandboxes(cfg Config, sb *passes.Sandbox, tr obs.TraceContext, n, workers int) ([]*passes.Sandbox, func(i int) *passes.Sandbox) {
	if sb == nil {
		return nil, func(int) *passes.Sandbox { return nil }
	}
	if workers <= 1 {
		return nil, func(int) *passes.Sandbox { return sb }
	}
	subs := make([]*passes.Sandbox, n)
	for i := range subs {
		subs[i] = cfg.sandbox(tr)
	}
	return subs, func(i int) *passes.Sandbox { return subs[i] }
}

func absorbAll(sb *passes.Sandbox, subs []*passes.Sandbox) {
	for _, sub := range subs {
		if sub != nil {
			sb.Absorb(sub)
		}
	}
}

// CheckEquiv verifies behavioural equivalence of one function across two
// modules by interpreting both on seeded inputs (see internal/interp).
func CheckEquiv(orig, xform *ir.Module, fname string, runs int) error {
	return interp.CheckEquiv(orig, xform, fname, runs, nil)
}
