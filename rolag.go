// Package rolag is the public facade of the RoLAG reproduction: it
// compiles mini-C source to SSA IR, runs the canonicalization pipeline,
// optionally unrolls loops, applies a loop-(re)rolling technique, and
// reports code sizes under the project's cost models.
//
// The implementation follows "Loop Rolling for Code Size Reduction",
// Rocha, Petoumenos, Franke, Bhatotia, O'Boyle — CGO 2022. The primary
// contribution lives in internal/rolag; the baseline from §II in
// internal/reroll; every supporting substrate (IR, frontend, interpreter,
// cost model, unroller) is implemented from scratch in this repository.
package rolag

import (
	"context"
	"fmt"
	"time"

	"rolag/internal/cc"
	"rolag/internal/costmodel"
	"rolag/internal/interp"
	"rolag/internal/ir"
	"rolag/internal/passes"
	"rolag/internal/reroll"
	rl "rolag/internal/rolag"
	"rolag/internal/unroll"
)

// Optimization selects the loop-(re)rolling technique to apply.
type Optimization int

// Available techniques.
const (
	// OptNone applies no rolling (the evaluation baseline).
	OptNone Optimization = iota
	// OptLLVMReroll applies the LLVM-style loop rerolling of §II.
	OptLLVMReroll
	// OptRoLAG applies the paper's loop rolling for straight-line code.
	OptRoLAG
)

func (o Optimization) String() string {
	switch o {
	case OptNone:
		return "none"
	case OptLLVMReroll:
		return "llvm-reroll"
	case OptRoLAG:
		return "rolag"
	}
	return "unknown"
}

// Options re-exports the RoLAG configuration knobs.
type Options = rl.Options

// Stats re-exports the RoLAG run statistics.
type Stats = rl.Stats

// Degraded re-exports the fail-soft degradation report: which pass
// executions were rolled back and why. See Config.FailSoft.
type Degraded = passes.Degraded

// PassSkip re-exports one entry of a Degraded report.
type PassSkip = passes.Skip

// Guard re-exports the sandbox admission interface (the service
// engine's circuit breakers implement it).
type Guard = passes.Guard

// DefaultOptions returns the paper's full configuration.
func DefaultOptions() *Options { return rl.DefaultOptions() }

// NoSpecialNodes returns the Fig. 19 ablation configuration.
func NoSpecialNodes() *Options { return rl.NoSpecialNodes() }

// Extensions returns the defaults plus the beyond-paper extensions
// (select-based min/max reductions, the paper's §V.C future work).
func Extensions() *Options { return rl.Extensions() }

// Config describes one compilation.
type Config struct {
	// Name is the module name (defaults to "module").
	Name string
	// Unroll, when >= 2, force-unrolls every canonical inner loop by
	// this factor before optimizing (the TSVC methodology of §V.C).
	Unroll int
	// Opt selects the rolling technique.
	Opt Optimization
	// Options configures RoLAG when Opt == OptRoLAG (nil = defaults).
	Options *Options
	// Flatten runs the loop-flattening cleanup after RoLAG, collapsing
	// the inner-loop-in-outer-loop nests left behind when an unrolled
	// loop is rerolled (the improvement §V.C of the paper suggests).
	Flatten bool
	// SkipCleanup disables the post-roll cleanup pipeline.
	SkipCleanup bool
	// CloneInput makes Optimize work on a deep copy of the input module,
	// leaving the caller's module untouched. Result.Module is then owned
	// exclusively by the caller. The compilation service sets this so
	// cached results are immutable.
	CloneInput bool
	// FailSoft runs every pass (and RoLAG itself, per function) under a
	// checkpointed sandbox: a pass that panics, exceeds the per-pass
	// budget, or breaks the IR verifier is rolled back and skipped, the
	// rest of the pipeline continues, and Result.Degraded records what
	// was lost. The output is then correct but potentially larger than a
	// fully healthy pipeline would produce. Frontend errors and a
	// corrupt final module still fail hard.
	FailSoft bool
	// PassBudget is the fail-soft per-pass wall-clock budget
	// (0 = passes.DefaultPassBudget). Ignored unless FailSoft is set.
	PassBudget time.Duration
	// Guard, when set with FailSoft, is consulted before and notified
	// after every sandboxed pass execution; the service engine passes
	// its per-pass circuit breakers here.
	Guard Guard
}

// Result is the outcome of one compilation.
type Result struct {
	// Module is the final IR.
	Module *ir.Module
	// SizeBefore and SizeAfter are cost-model text sizes (in bytes)
	// before and after the rolling technique ran, under the profit
	// (TTI-style) model.
	SizeBefore, SizeAfter int
	// BinaryBefore and BinaryAfter are the corresponding sizes under the
	// finer "binary" measurement model, mirroring the paper's
	// object-file measurements.
	BinaryBefore, BinaryAfter int
	// Stats holds RoLAG statistics (nil unless Opt == OptRoLAG).
	Stats *Stats
	// Rerolled counts loops rerolled by the baseline (Opt ==
	// OptLLVMReroll).
	Rerolled int
	// Degraded is the fail-soft degradation report: nil when every pass
	// took effect (or Config.FailSoft was off), otherwise the list of
	// pass executions that were rolled back and skipped.
	Degraded *Degraded
}

// Reduction returns the relative binary-size reduction in percent
// (positive = smaller).
func (r *Result) Reduction() float64 {
	if r.BinaryBefore == 0 {
		return 0
	}
	return 100 * float64(r.BinaryBefore-r.BinaryAfter) / float64(r.BinaryBefore)
}

// Compile parses mini-C source and runs the canonicalization pipeline,
// returning the IR module without any rolling applied.
func Compile(src, name string) (*ir.Module, error) {
	if name == "" {
		name = "module"
	}
	m, err := cc.Compile(src, name)
	if err != nil {
		return nil, err
	}
	passes.Standard().Run(m)
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("rolag: internal error: %w", err)
	}
	return m, nil
}

// Build compiles src and applies the configured pipeline.
//
// Unless cfg.CloneInput is set, the returned Result.Module is the very
// module the pipeline mutated; see Optimize for the aliasing contract.
func Build(src string, cfg Config) (*Result, error) {
	return BuildContext(context.Background(), src, cfg)
}

// BuildContext is Build with a deadline/cancellation context. The
// context is checked between pipeline stages and between functions, so
// a cancelled compilation returns ctx.Err() promptly without leaving
// the caller with a half-transformed module it should keep using.
//
// With cfg.FailSoft the canonicalization pipeline already runs under
// the sandbox; frontend (parse/typecheck/lowering) errors still fail
// hard, because without IR there is nothing correct to fall back to.
func BuildContext(ctx context.Context, src string, cfg Config) (*Result, error) {
	if !cfg.FailSoft {
		m, err := Compile(src, cfg.Name)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return optimizeContext(ctx, m, cfg, nil)
	}
	name := cfg.Name
	if name == "" {
		name = "module"
	}
	m, err := cc.Compile(src, name)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("rolag: internal error: %w", err)
	}
	sb := cfg.sandbox()
	passes.Standard().RunSandboxed(m, sb)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return optimizeContext(ctx, m, cfg, sb)
}

func (cfg Config) sandbox() *passes.Sandbox {
	return &passes.Sandbox{Budget: cfg.PassBudget, Guard: cfg.Guard}
}

// Optimize applies the configured unrolling and rolling technique to a
// compiled module.
//
// Aliasing: by default the module is transformed IN PLACE and
// Result.Module is the same pointer as the input — callers that need
// the pre-optimization module, or that cache and share Results, must
// either clone first (ir.CloneModule) or set cfg.CloneInput, which
// makes Optimize transform a private deep copy and leave the input
// untouched.
func Optimize(m *ir.Module, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), m, cfg)
}

// OptimizeContext is Optimize with a deadline/cancellation context,
// checked between pipeline stages and between functions. When the
// context expires mid-run the input module may already be partially
// transformed (unless cfg.CloneInput is set); the error tells the
// caller to discard it.
func OptimizeContext(ctx context.Context, m *ir.Module, cfg Config) (*Result, error) {
	var sb *passes.Sandbox
	if cfg.FailSoft {
		sb = cfg.sandbox()
	}
	return optimizeContext(ctx, m, cfg, sb)
}

// optimizeContext is the shared pipeline body. With sb == nil it is the
// fail-hard path: any pass failure propagates (panics unwind, a broken
// module fails the final Verify). With a sandbox every transformation
// stage runs checkpointed and rollback-protected; the final Verify
// remains as a fail-hard backstop, but can only trip if the sandbox
// itself has a bug, since each committed execution was verified.
func optimizeContext(ctx context.Context, m *ir.Module, cfg Config, sb *passes.Sandbox) (*Result, error) {
	if cfg.CloneInput {
		m = ir.CloneModule(m)
	}
	if cfg.Unroll >= 2 {
		for _, f := range m.Funcs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if sb != nil {
				k := cfg.Unroll
				sb.RunShadow("unroll", f, func(sf *ir.Func) bool {
					return unroll.UnrollAll(sf, k) > 0
				})
			} else {
				unroll.UnrollAll(f, cfg.Unroll)
			}
		}
		runStandard(m, sb)
		if sb == nil {
			if err := m.Verify(); err != nil {
				return nil, fmt.Errorf("rolag: after unroll: %w", err)
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	profit := costmodel.Default()
	binary := costmodel.Binary()
	res := &Result{
		Module:       m,
		SizeBefore:   profit.Module(m),
		BinaryBefore: binary.Module(m),
	}
	switch cfg.Opt {
	case OptNone:
	case OptLLVMReroll:
		for _, f := range m.Funcs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if sb != nil {
				// n is fresh per iteration and only read when the runner
				// committed, so an abandoned (timed-out) goroutine writing
				// it later races with nothing.
				var n int
				if _, ok := sb.RunShadow("reroll", f, func(sf *ir.Func) bool {
					n = reroll.RerollFunc(sf)
					return n > 0
				}); ok {
					res.Rerolled += n
				}
			} else {
				res.Rerolled += reroll.RerollFunc(f)
			}
		}
	case OptRoLAG:
		opts := cfg.Options
		if opts == nil {
			opts = rl.DefaultOptions()
		}
		res.Stats = rl.NewStats()
		for _, f := range m.Funcs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if sb != nil {
				// RoLAG appends constant-table globals to the module, so it
				// runs in place (same goroutine) behind a snapshot rather
				// than on an abandonable shadow; see Sandbox.RunInPlace.
				var st *rl.Stats
				if _, ok := sb.RunInPlace("rolag", f, func(sf *ir.Func) bool {
					st = rl.RollFunc(sf, opts)
					return st.LoopsRolled > 0
				}); ok && st != nil {
					res.Stats.Add(st)
				}
			} else {
				res.Stats.Add(rl.RollFunc(f, opts))
			}
		}
		if cfg.Flatten {
			for _, f := range m.Funcs {
				if sb != nil {
					sb.RunShadow("flatten", f, passes.Flatten)
				} else {
					passes.Flatten(f)
				}
			}
		}
	default:
		return nil, fmt.Errorf("rolag: unknown optimization %d", cfg.Opt)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !cfg.SkipCleanup && cfg.Opt != OptNone {
		runStandard(m, sb)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("rolag: after %s: %w", cfg.Opt, err)
	}
	res.SizeAfter = profit.Module(m)
	res.BinaryAfter = binary.Module(m)
	if sb != nil {
		res.Degraded = sb.Report()
	}
	return res, nil
}

func runStandard(m *ir.Module, sb *passes.Sandbox) {
	if sb != nil {
		passes.Standard().RunSandboxed(m, sb)
	} else {
		passes.Standard().Run(m)
	}
}

// CheckEquiv verifies behavioural equivalence of one function across two
// modules by interpreting both on seeded inputs (see internal/interp).
func CheckEquiv(orig, xform *ir.Module, fname string, runs int) error {
	return interp.CheckEquiv(orig, xform, fname, runs, nil)
}
