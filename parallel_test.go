package rolag_test

// Determinism contract of Config.Parallelism: the parallel pipeline
// must produce a module byte-identical to the serial one — including
// the "roll.cdata" constant-table global names, which the parallel
// path stages per function and replays in function order.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rolag"
)

// multiFuncSource synthesizes one translation unit with nf functions
// cycling through the corpus shapes that matter for the parallel path:
// irregular call runs (these need a mismatch constant pool, so they
// create roll.cdata globals), arithmetic store runs, reductions, and
// plain near-miss code.
func multiFuncSource(seed int64, nf int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("extern void sink2(char *p, int x);\n")
	b.WriteString("extern int ext2(int a, int b) pure;\n")
	for i := 0; i < nf; i++ {
		switch i % 4 {
		case 0: // irregular call run -> mismatch node -> constant pool
			n := 7 + rng.Intn(5)
			stride := 4 * (1 + rng.Intn(7))
			fmt.Fprintf(&b, "void cf%d(char *p) {\n", i)
			for j := 0; j < n; j++ {
				fmt.Fprintf(&b, "\tsink2(p + %d, %d);\n", j*stride, rng.Intn(100000))
			}
			b.WriteString("}\n")
		case 1: // arithmetic-sequence store run
			n := 5 + rng.Intn(10)
			start, step := rng.Intn(50), 1+rng.Intn(9)
			fmt.Fprintf(&b, "void sf%d(int *a, int v) {\n", i)
			for j := 0; j < n; j++ {
				fmt.Fprintf(&b, "\ta[%d] = %d;\n", j, start+j*step)
			}
			b.WriteString("}\n")
		case 2: // reduction chain
			n := 6 + rng.Intn(8)
			fmt.Fprintf(&b, "int rf%d(int *a) {\n\tint acc = 0;\n", i)
			for j := 0; j < n; j++ {
				fmt.Fprintf(&b, "\tacc = acc + a[%d];\n", j)
			}
			b.WriteString("\treturn acc;\n}\n")
		default: // plain code with nothing to roll
			fmt.Fprintf(&b, "int pf%d(int x, int y) {\n\tint t = x * %d;\n\tt = t + y;\n\tt = t ^ %d;\n\treturn ext2(t, x);\n}\n",
				i, 3+rng.Intn(9), rng.Intn(1000))
		}
	}
	return b.String()
}

// TestParallelBuildMatchesSerial: for every pipeline flavor, building
// with Parallelism 8 must be byte-identical to building serially.
func TestParallelBuildMatchesSerial(t *testing.T) {
	src := multiFuncSource(41, 16)
	configs := []struct {
		name string
		cfg  rolag.Config
	}{
		{"rolag", rolag.Config{Opt: rolag.OptRoLAG}},
		{"rolag-failsoft", rolag.Config{Opt: rolag.OptRoLAG, FailSoft: true}},
		{"rolag-flatten-ext", rolag.Config{Opt: rolag.OptRoLAG, Flatten: true, Options: rolag.Extensions()}},
		{"reroll-unroll4", rolag.Config{Opt: rolag.OptLLVMReroll, Unroll: 4}},
		{"reroll-unroll4-failsoft", rolag.Config{Opt: rolag.OptLLVMReroll, Unroll: 4, FailSoft: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			serial := tc.cfg
			serial.Parallelism = 1
			sres, err := rolag.Build(src, serial)
			if err != nil {
				t.Fatal(err)
			}
			par := tc.cfg
			par.Parallelism = 8
			pres, err := rolag.Build(src, par)
			if err != nil {
				t.Fatal(err)
			}
			sir, pir := sres.Module.String(), pres.Module.String()
			if sir != pir {
				t.Errorf("parallel module differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s", sir, pir)
			}
			if sres.SizeAfter != pres.SizeAfter || sres.BinaryAfter != pres.BinaryAfter {
				t.Errorf("sizes diverge: serial (%d, %d), parallel (%d, %d)",
					sres.SizeAfter, sres.BinaryAfter, pres.SizeAfter, pres.BinaryAfter)
			}
			if sres.Rerolled != pres.Rerolled {
				t.Errorf("Rerolled: serial %d, parallel %d", sres.Rerolled, pres.Rerolled)
			}
			if (sres.Stats == nil) != (pres.Stats == nil) {
				t.Fatalf("stats presence diverges")
			}
			if sres.Stats != nil && sres.Stats.LoopsRolled != pres.Stats.LoopsRolled {
				t.Errorf("LoopsRolled: serial %d, parallel %d", sres.Stats.LoopsRolled, pres.Stats.LoopsRolled)
			}
			if (sres.Degraded == nil) != (pres.Degraded == nil) {
				t.Errorf("degradation reports diverge: serial %v, parallel %v", sres.Degraded, pres.Degraded)
			}
		})
	}
}

// TestParallelReplaysGlobalNames guards the part that makes parallelism
// observable if it breaks: multiple functions must create constant-table
// globals, and the staged parallel run must hand them the exact serial
// names. A run where no function creates a global would pass the
// byte-identity test vacuously, so this test requires the workload to
// roll and to allocate at least two roll.cdata tables.
func TestParallelReplaysGlobalNames(t *testing.T) {
	src := multiFuncSource(41, 16)
	res, err := rolag.Build(src, rolag.Config{Opt: rolag.OptRoLAG, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.LoopsRolled < 2 {
		t.Fatalf("workload rolled too little to exercise staging (stats: %+v)", res.Stats)
	}
	tables := 0
	for _, g := range res.Module.Globals {
		if g.Name == "roll.cdata" || strings.HasPrefix(g.Name, "roll.cdata.") {
			tables++
		}
	}
	if tables < 2 {
		t.Fatalf("want >= 2 roll.cdata constant tables, got %d", tables)
	}
	// GOMAXPROCS-sized pool (negative Parallelism) must agree too.
	neg, err := rolag.Build(src, rolag.Config{Opt: rolag.OptRoLAG, Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	if neg.Module.String() != res.Module.String() {
		t.Error("Parallelism: -1 module differs from Parallelism: 8")
	}
}
